package harness

import (
	"bytes"
	"testing"
)

// TestServeIsolationBattery is the PR's headline gate: a hostile tenant
// detonating the crash and attack corpora next to well-behaved tenants
// must leave every neighbour's complete account — fingerprint, counters,
// clock, p50/p99 — byte-identical to a solo run, at worker counts 1
// and 8.
func TestServeIsolationBattery(t *testing.T) {
	res, err := RunServeIsolation(ServeIsolationOptions{Tenants: 3, Messages: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed != len(res.Tenants) || len(res.Tenants) != 3 {
		t.Fatalf("isolation battery: %d/%d tenants isolated\n%s",
			res.Passed, len(res.Tenants), RenderServeIsolation(res))
	}
	if !res.HostileDeterministic {
		t.Fatalf("hostile tenant nondeterministic across worker counts\n%s", RenderServeIsolation(res))
	}
}

// TestServeSoakDeterministic: the soak summary — render and JSON artifact
// — is byte-identical for a fixed seed at any worker count.
func TestServeSoakDeterministic(t *testing.T) {
	run := func(parallel int) (string, []byte) {
		res, err := RunServeSoak(ServeSoakOptions{
			Tenants: 3, Messages: 15, Seed: 9, Hostile: true, Parallel: parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := ExportServeSoakJSON(res)
		if err != nil {
			t.Fatal(err)
		}
		return RenderServeSoak(res), data
	}
	r1, j1 := run(1)
	r8, j8 := run(8)
	if r1 != r8 {
		t.Fatalf("soak render diverged across worker counts:\n%s\nvs\n%s", r1, r8)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatalf("soak JSON diverged across worker counts:\n%s\nvs\n%s", j1, j8)
	}
}

// TestHostileDriverDeterministic: the hostile tenant's own record is a
// pure function of the message index sequence.
func TestHostileDriverDeterministic(t *testing.T) {
	run := func() (string, []string) {
		d := NewHostileDriver()
		var kinds []string
		for i := 0; i < 8; i++ {
			out := d.Process(i, "x")
			kinds = append(kinds, string(out.Kind))
			if out.Steps != hostileSteps {
				t.Fatalf("message %d: steps = %d, want the fixed synthetic cost %d", i, out.Steps, hostileSteps)
			}
		}
		return d.Fingerprint(), kinds
	}
	f1, k1 := run()
	f2, k2 := run()
	if f1 != f2 {
		t.Fatalf("hostile fingerprints diverged:\n%s\nvs\n%s", f1, f2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("message %d outcome diverged: %s vs %s", i, k1[i], k2[i])
		}
	}
	// the crash corpus must actually detonate: budget kills and violations
	// should both appear in the first few messages
	var sawBudget, sawViolation bool
	for _, k := range k1 {
		switch k {
		case "budget":
			sawBudget = true
		case "violation":
			sawViolation = true
		}
	}
	if !sawBudget || !sawViolation {
		t.Fatalf("hostile outcomes %v never tripped a budget or flagged a violation — the tenant is not hostile enough", k1)
	}
}
