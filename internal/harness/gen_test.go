package harness

import "testing"

// TestGenCorpusAcceptance is the PR's acceptance gate verbatim: 200
// generated apps at seed 1 score with zero missed must-catch flows and
// zero false positives on sanctioned flows, across every stratum.
func TestGenCorpusAcceptance(t *testing.T) {
	res, err := RunGenCorpus(GenOptions{N: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed != len(res.Apps) || res.FN != 0 || res.FP != 0 {
		t.Fatalf("generated corpus not clean: passed %d/%d, FN=%d FP=%d\n%s",
			res.Passed, len(res.Apps), res.FN, res.FP, RenderGen(res))
	}
	if res.TP == 0 {
		t.Fatal("generated corpus caught zero flows — ground truth is vacuous")
	}
	if got := len(res.Rows); got != 7 {
		t.Fatalf("expected all 7 strata populated, got %d rows", got)
	}
}

// TestGenCorpusSeedSweep keeps the population clean across a spread of
// corpus seeds, not just the pinned acceptance seed.
func TestGenCorpusSeedSweep(t *testing.T) {
	for _, seed := range []uint64{0, 2, 7, 42, 12345} {
		res, err := RunGenCorpus(GenOptions{N: 70, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Passed != len(res.Apps) {
			t.Fatalf("seed %d: passed %d/%d\n%s", seed, res.Passed, len(res.Apps), RenderGen(res))
		}
	}
}

// TestGenCorpusDeterministic: the rendered report is byte-identical
// regardless of worker count — sequential, default, and an oversubscribed
// pool all produce the same bytes, so verify.sh can cmp them directly.
func TestGenCorpusDeterministic(t *testing.T) {
	render := func(parallel int) string {
		res, err := RunGenCorpus(GenOptions{N: 56, Seed: 3, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return RenderGen(res)
	}
	seq := render(1)
	for _, p := range []int{0, 8} {
		if got := render(p); got != seq {
			t.Fatalf("report diverges between -parallel 1 and -parallel %d:\n%s",
				p, firstDiffContext(seq, got))
		}
	}
}

// TestGenCorpusNoResolveAgreement: scoring on the map-walk interpreter
// must reproduce the slot-compiled report byte for byte — the generator
// doubles as a differential workload for the resolver.
func TestGenCorpusNoResolveAgreement(t *testing.T) {
	run := func(noResolve bool) string {
		res, err := RunGenCorpus(GenOptions{N: 56, Seed: 3, NoResolve: noResolve})
		if err != nil {
			t.Fatal(err)
		}
		return RenderGen(res)
	}
	slot, mapWalk := run(false), run(true)
	if slot != mapWalk {
		t.Fatalf("report diverges between slot and -noresolve runs:\n%s",
			firstDiffContext(slot, mapWalk))
	}
}
