// the sensitive label sits deeper than the tracker's collect bound: a
// lossy truncation would let it flow; the tracker must join the top label
// and deny instead
let v = __t.label("secret", "Msg");
for (let i = 0; i < 14; i++) { v = [v]; }
__t.check(v, { sink: true }, "crash:deep-data");
