// unbounded array growth: the allocation budget trips long before the
// fuel budget would
let a = [];
while (true) { a.push(1, 2, 3, 4, 5, 6, 7, 8); }
