// unbounded mutual recursion: depth accumulates across two frames
function even(n) { return odd(n + 1); }
function odd(n) { return even(n + 1); }
even(0);
