// unbounded self-recursion: the call-depth budget must trip before the
// host stack does
function f(n) { return f(n + 1); }
f(0);
