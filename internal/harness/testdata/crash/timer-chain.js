// each timer reschedules itself, advancing the virtual clock while
// burning almost no fuel: only the deadline budget can stop it
function tick(n) {
  setTimeout(function() { tick(n + 1); }, 1000);
}
tick(0);
