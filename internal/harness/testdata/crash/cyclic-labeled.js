// a labelled cyclic structure, wrapped deeper than the tracker's collect
// bound, reaches a sink: collection must terminate on the cycles AND the
// truncation must join the top label so the flow is denied, not leaked
const o = { name: __t.label("secret", "Msg") };
o.self = o;
o.loop = [o, [o, { back: o }]];
let w = o;
for (let i = 0; i < 14; i++) { w = [w]; }
__t.check(w, { sink: true }, "crash:cyclic-labeled");
