// spins forever without allocating or advancing the clock: only the fuel
// budget can stop it
let n = 0;
while (true) { n = n + 1; }
