// the policy's label function spins forever: the guard's fuel budget must
// trip inside the labeller call
__t.label("x", "Spin");
