// floods a sink with host writes in a tight loop: host operations do not
// bypass the fuel budget
const fs = require("fs");
while (true) {
  fs.writeFileSync("/flood", "chunk");
}
