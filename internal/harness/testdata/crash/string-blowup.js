// exponential string doubling: a handful of iterations exhausts the
// allocation budget while burning almost no fuel
let s = "xxxxxxxx";
while (true) { s = s + s; }
