package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"turnstile/internal/corpus"
	"turnstile/internal/dift"
)

// This file is the race-proofing battery for the parallel experiment
// engine: it drives the full pipeline (parse → analyze → instrument →
// load → replay) from many goroutines at once and asserts that nothing
// observable — violation counts, sink writes, rendered tables — differs
// from the sequential run. `go test -race ./...` over these tests is a
// tier-1 gate (see README).

// replaySignature is everything observable about one app's replay: sink
// writes, console output, and the trackers' violation/labelling activity.
type replaySignature struct {
	App                  string
	Writes               string
	Console              int
	SelStats, ExhStats   dift.Stats
	SelPaths             int
	SelInvokes, ExhInvok int
}

// replayApp prepares one app (optionally through a shared cache) and
// feeds it msgs messages on all three versions.
func replayApp(app *corpus.App, cache *PipelineCache, msgs int) (replaySignature, error) {
	prep, err := PrepareAppCached(app, cache)
	if err != nil {
		return replaySignature{}, err
	}
	for i := 0; i < msgs; i++ {
		for _, r := range []*Runner{prep.Original, prep.Selective, prep.Exhaustive} {
			if err := r.Process(i); err != nil {
				return replaySignature{}, fmt.Errorf("%s message %d: %w", r.Mode, i, err)
			}
		}
	}
	var w strings.Builder
	for _, sw := range prep.Original.IP.IO.WritesTo("fs") {
		fmt.Fprintf(&w, "%v;", sw.Value)
	}
	return replaySignature{
		App:        app.Name,
		Writes:     w.String(),
		Console:    len(prep.Original.IP.ConsoleOut),
		SelStats:   prep.Selective.IP.Tracker.Stats(),
		ExhStats:   prep.Exhaustive.IP.Tracker.Stats(),
		SelPaths:   len(prep.Analysis.Paths),
		SelInvokes: prep.SelectiveResult.Invokes,
		ExhInvok:   prep.ExhaustiveResult.Invokes,
	}, nil
}

// TestConcurrentPrepareReplayEquivalence runs PrepareApp + workload
// replay for every runnable corpus app from 8 goroutines simultaneously
// (sharing one pipeline cache) and asserts that each goroutine observes
// exactly the violation counts, tracker activity, and sink output of the
// sequential reference run.
func TestConcurrentPrepareReplayEquivalence(t *testing.T) {
	const goroutines = 8
	const msgs = 8
	apps := corpus.Runnable(corpus.All())
	if len(apps) != 27 {
		t.Fatalf("runnable apps = %d, want 27", len(apps))
	}

	// sequential reference, no cache
	want := make(map[string]replaySignature, len(apps))
	for _, app := range apps {
		sig, err := replayApp(app, nil, msgs)
		if err != nil {
			t.Fatalf("sequential %s: %v", app.Name, err)
		}
		want[app.Name] = sig
	}

	cache := NewCache()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(apps))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, app := range apps {
				sig, err := replayApp(app, cache, msgs)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d %s: %v", g, app.Name, err)
					return
				}
				if sig != want[app.Name] {
					errs <- fmt.Errorf("goroutine %d %s:\n got %+v\nwant %+v", g, app.Name, sig, want[app.Name])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s := cache.Stats(); s.Entries != len(apps) {
		t.Errorf("cache entries = %d, want %d (stats %+v)", s.Entries, len(apps), s)
	}
}

// TestE1RenderDeterminism runs E1 under every scheduling mode — the
// sequential paper methodology, the 8-worker pool, and cold and warm
// shared-cache variants — and asserts byte-identical rendered Figure 10
// and Table 2 output.
func TestE1RenderDeterminism(t *testing.T) {
	apps := corpus.All()
	table2 := RenderTable2(RunTable2())

	cache := NewCache()
	variants := []struct {
		name string
		opts E1Options
	}{
		{"sequential", E1Options{Parallel: 1}},
		{"parallel-8", E1Options{Parallel: 8}},
		{"parallel-8-cold-cache", E1Options{Parallel: 8, Cache: cache}},
		{"parallel-8-warm-cache", E1Options{Parallel: 8, Cache: cache}},
		{"sequential-warm-cache", E1Options{Parallel: 1, Cache: cache}},
	}
	var ref string
	for _, v := range variants {
		res, err := RunE1With(apps, v.opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		out := RenderFigure10(res)
		if ref == "" {
			ref = out
		} else if out != ref {
			t.Errorf("%s rendered Figure 10 differs from sequential run:\n%s\n--- want ---\n%s", v.name, out, ref)
		}
		if got := RenderTable2(RunTable2()); got != table2 {
			t.Errorf("%s: Table 2 render not stable", v.name)
		}
	}
	s := cache.Stats()
	if s.Entries != len(apps) {
		t.Errorf("cache entries = %d, want %d", s.Entries, len(apps))
	}
	if s.Hits == 0 {
		t.Error("warm cache runs recorded no hits")
	}
}

// TestE1ParallelMatchesSequential checks the full result structure (not
// just the render) for a parallel run: rows in corpus order, identical
// counts and aggregates.
func TestE1ParallelMatchesSequential(t *testing.T) {
	apps := corpus.All()
	seq, err := RunE1(apps)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunE1With(apps, E1Options{Parallel: 16, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rows) != len(par.Rows) {
		t.Fatalf("rows: %d vs %d", len(seq.Rows), len(par.Rows))
	}
	for i := range seq.Rows {
		s, p := seq.Rows[i], par.Rows[i]
		if s.App != p.App || s.Category != p.Category || s.Manual != p.Manual ||
			s.Turnstile != p.Turnstile || s.Baseline != p.Baseline {
			t.Errorf("row %d differs: %+v vs %+v", i, s, p)
		}
	}
	if seq.TurnstileTotal != par.TurnstileTotal || seq.BaselineTotal != par.BaselineTotal ||
		seq.ManualTotal != par.ManualTotal || seq.AppsOnlyTurnstile != par.AppsOnlyTurnstile ||
		seq.AppsBothFound != par.AppsBothFound || seq.AppsNeither != par.AppsNeither {
		t.Errorf("aggregates differ: %+v vs %+v", seq, par)
	}
}

// TestMeasureAppsParallelOrder checks that parallel E2 measurement
// returns apps in corpus order with plausible profiles.
func TestMeasureAppsParallelOrder(t *testing.T) {
	apps := corpus.All()
	subset := []*corpus.App{
		corpus.ByName(apps, "modbus"),
		corpus.ByName(apps, "nlp.js"),
		corpus.ByName(apps, "watson"),
		corpus.ByName(apps, "sensor-logger"),
	}
	opts := E2Options{Messages: 20, Warmup: 3, Repeats: 1, Parallel: 4, Cache: NewCache()}
	ms, err := MeasureApps(subset, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(subset) {
		t.Fatalf("measurements = %d", len(ms))
	}
	for i, m := range ms {
		if m.App != subset[i].Name {
			t.Errorf("measurement %d = %s, want %s (order must be deterministic)", i, m.App, subset[i].Name)
		}
		if len(m.Original) != opts.Messages || len(m.Selective) != opts.Messages || len(m.Exhaustive) != opts.Messages {
			t.Errorf("%s: profile lengths %d/%d/%d", m.App, len(m.Original), len(m.Selective), len(m.Exhaustive))
		}
	}
}

// TestParallelE1Speedup demonstrates the acceptance criterion: on a
// machine with at least 4 cores, the parallel E1 path is at least 2×
// faster than the sequential one (with identical rendered output, which
// TestE1RenderDeterminism already pins down).
func TestParallelE1Speedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to demonstrate the 2x speedup, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	apps := corpus.All()
	// warm up allocators and caches once
	if _, err := RunE1(apps); err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for attempt := 0; attempt < 3 && best < 2; attempt++ {
		t0 := time.Now()
		if _, err := RunE1(apps); err != nil {
			t.Fatal(err)
		}
		seq := time.Since(t0)
		t0 = time.Now()
		if _, err := RunE1With(apps, E1Options{Parallel: runtime.NumCPU()}); err != nil {
			t.Fatal(err)
		}
		par := time.Since(t0)
		if ratio := float64(seq) / float64(par); ratio > best {
			best = ratio
		}
	}
	t.Logf("best parallel E1 speedup on %d CPUs: %.2fx", runtime.NumCPU(), best)
	if best < 2 {
		t.Errorf("parallel E1 speedup = %.2fx, want >= 2x on %d CPUs", best, runtime.NumCPU())
	}
}
