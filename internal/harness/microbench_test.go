package harness

import (
	"os"
	"testing"
)

// TestMicrobenchRuns is the always-on smoke test: every workload must
// execute cleanly on both env implementations and produce sane numbers.
func TestMicrobenchRuns(t *testing.T) {
	rep, err := RunMicrobench(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != len(MicrobenchPrograms) {
		t.Fatalf("benchmarks = %d, want %d", len(rep.Benchmarks), len(MicrobenchPrograms))
	}
	for _, r := range rep.Benchmarks {
		if r.SlotNs <= 0 || r.MapNs <= 0 {
			t.Fatalf("%s: non-positive timing %+v", r.Name, r)
		}
	}
	data, err := ExportMicrobenchJSON(rep)
	if err != nil || len(data) == 0 {
		t.Fatalf("export: %v", err)
	}
}

// TestVMMicrobenchRuns smoke-tests the three-way VM benchmark: every
// workload must execute cleanly on all three engines.
func TestVMMicrobenchRuns(t *testing.T) {
	rep, err := RunVMMicrobench(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != len(MicrobenchPrograms) {
		t.Fatalf("benchmarks = %d, want %d", len(rep.Benchmarks), len(MicrobenchPrograms))
	}
	for _, r := range rep.Benchmarks {
		if r.VMNs <= 0 || r.SlotNs <= 0 || r.MapNs <= 0 {
			t.Fatalf("%s: non-positive timing %+v", r.Name, r)
		}
	}
	if _, err := ExportVMMicrobenchJSON(rep); err != nil {
		t.Fatalf("export: %v", err)
	}
}

// vmGateBar returns the per-workload acceptance bar for TestVMFasterGate:
// 2x on the identifier- and call-heavy programs (the tentpole acceptance
// criterion), 1.5x on property-heavy, whose time is dominated by props-map
// hashing shared with the walker.
func vmGateBar(name string) float64 {
	if name == "property-heavy" {
		return 1.5
	}
	return 2.0
}

// TestVMFasterGate is the verify.sh perf gate on the bytecode VM: it must
// beat the slot-env tree-walker by the per-workload bars above. Opt-in
// via TURNSTILE_BENCH_GATE=1, best-of-3 attempts, same rationale as
// TestSlotEnvFasterGate.
func TestVMFasterGate(t *testing.T) {
	if os.Getenv("TURNSTILE_BENCH_GATE") == "" {
		t.Skip("set TURNSTILE_BENCH_GATE=1 to run the VM perf gate")
	}
	var last *VMMicrobenchReport
	for attempt := 0; attempt < 3; attempt++ {
		rep, err := RunVMMicrobench(7)
		if err != nil {
			t.Fatal(err)
		}
		last = rep
		pass := true
		for _, r := range rep.Benchmarks {
			t.Logf("attempt %d: %-18s vm %dns slot %dns speedup %.2fx (bar %.2fx)",
				attempt, r.Name, r.VMNs, r.SlotNs, r.SpeedupVsSlot, vmGateBar(r.Name))
			if r.SpeedupVsSlot < vmGateBar(r.Name) {
				pass = false
			}
		}
		if pass {
			return
		}
	}
	for _, r := range last.Benchmarks {
		if r.SpeedupVsSlot < vmGateBar(r.Name) {
			t.Errorf("%s: VM only %.2fx faster than the slot-env walker (bar %.2fx)",
				r.Name, r.SpeedupVsSlot, vmGateBar(r.Name))
		}
	}
}

// TestSlotEnvFasterGate is the verify.sh perf gate on the resolver: the
// slot-indexed environment must beat the map walk on every workload, and
// by at least 1.5x on the identifier-heavy one (the acceptance bar).
// Opt-in via TURNSTILE_BENCH_GATE=1 — wall-clock comparisons do not
// belong in the default -race sweep. Best-of-3 attempts absorb scheduler
// noise; a persistent miss is a real regression.
func TestSlotEnvFasterGate(t *testing.T) {
	if os.Getenv("TURNSTILE_BENCH_GATE") == "" {
		t.Skip("set TURNSTILE_BENCH_GATE=1 to run the slot-env perf gate")
	}
	const identifierBar = 1.5
	var last *MicrobenchReport
	for attempt := 0; attempt < 3; attempt++ {
		rep, err := RunMicrobench(5)
		if err != nil {
			t.Fatal(err)
		}
		last = rep
		pass := true
		for _, r := range rep.Benchmarks {
			bar := 1.0
			if r.Name == "identifier-heavy" {
				bar = identifierBar
			}
			t.Logf("attempt %d: %-18s slot %dns map %dns speedup %.2fx (bar %.2fx)",
				attempt, r.Name, r.SlotNs, r.MapNs, r.Speedup, bar)
			if r.Speedup < bar {
				pass = false
			}
		}
		if pass {
			return
		}
	}
	for _, r := range last.Benchmarks {
		bar := 1.0
		if r.Name == "identifier-heavy" {
			bar = identifierBar
		}
		if r.Speedup < bar {
			t.Errorf("%s: slot env only %.2fx faster than the map walk (bar %.2fx)",
				r.Name, r.Speedup, bar)
		}
	}
}
