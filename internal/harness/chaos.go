package harness

import (
	"fmt"
	"strings"

	"turnstile/internal/corpus"
	"turnstile/internal/faults"
)

// Chaos mode replays the runnable corpus under deterministic fault
// injection and extends the paper's non-invasiveness check (E1's
// sink-trace equivalence) from happy paths to failure paths: for every
// app, the original, selective and exhaustive versions run against the
// same seeded fault schedule, and the harness asserts that sink traces,
// fault traces and per-message error outcomes all match. Instrumentation
// adds only __t calls — never host operations — so if the three versions
// diverge under faults, the instrumentation changed observable behaviour.

// ChaosOptions configures a chaos replay.
type ChaosOptions struct {
	// Seed drives the per-app generated fault schedules; the same seed
	// yields byte-identical schedules, fault traces and report output.
	Seed int64
	// Messages pumped through each version of each app.
	Messages int
	// Parallel is the worker count; 0 selects GOMAXPROCS, 1 runs
	// sequentially. Output is index-deterministic either way.
	Parallel int
	// Cache, when non-nil, memoizes parse + analysis per app.
	Cache *PipelineCache
	// Schedule, when non-nil, replaces the generated per-app schedules
	// with one fixed schedule for every app (the -faultschedule file).
	Schedule *faults.Schedule
	// NoResolve runs every version on the map-walk interpreter with the
	// resolver fast paths disabled (A/B escape hatch).
	NoResolve bool
	// NoVM runs every version on the tree-walking evaluator (-novm).
	NoVM bool
}

// ChaosAppResult is one app's outcome under fault injection.
type ChaosAppResult struct {
	App        string
	Stats      faults.Stats // injector counters from the original version
	FaultTrace string       // deterministic fault event trace
	MsgErrors  int          // messages whose pump returned an error
	SinkWrites int          // sink writes that survived the faults
	Equivalent bool
	Mismatch   string // first divergence, empty when Equivalent
}

// ChaosResult aggregates a chaos replay.
type ChaosResult struct {
	Seed       int64
	Messages   int
	Apps       []ChaosAppResult
	Equivalent int // apps whose three versions stayed in lockstep
}

// RunChaos replays every runnable app under the fault schedule derived
// from opts.Seed and the app name (or opts.Schedule verbatim).
func RunChaos(apps []*corpus.App, opts ChaosOptions) (*ChaosResult, error) {
	if opts.Messages <= 0 {
		opts.Messages = 50
	}
	runnable := corpus.Runnable(apps)
	results, err := mapIndexed(len(runnable), opts.Parallel, func(i int) (ChaosAppResult, error) {
		return chaosApp(runnable[i], opts)
	})
	if err != nil {
		return nil, err
	}
	res := &ChaosResult{Seed: opts.Seed, Messages: opts.Messages, Apps: results}
	for i := range results {
		if results[i].Equivalent {
			res.Equivalent++
		}
	}
	return res, nil
}

// chaosVersion is the observable record of one version's run under
// faults: everything that must be identical across the three versions.
type chaosVersion struct {
	mode       string
	sinkTrace  string
	faultTrace string
	msgErrors  []string
	stats      faults.Stats
}

func chaosApp(app *corpus.App, opts ChaosOptions) (ChaosAppResult, error) {
	prep, err := PrepareAppMode(app, opts.Cache, ExecMode{NoResolve: opts.NoResolve, NoVM: opts.NoVM})
	if err != nil {
		return ChaosAppResult{}, fmt.Errorf("harness: %s: %w", app.Name, err)
	}
	schedule := opts.Schedule
	if schedule == nil {
		schedule = faults.Generate(opts.Seed, app.Name)
	}
	run := func(r *Runner) chaosVersion {
		in := r.IP.InstallFaults(schedule)
		v := chaosVersion{mode: r.Mode}
		for i := 0; i < opts.Messages; i++ {
			if err := r.Process(i); err != nil {
				v.msgErrors = append(v.msgErrors, fmt.Sprintf("msg %d: %v", i, err))
			}
		}
		var b strings.Builder
		for _, w := range r.IP.IO.Writes {
			fmt.Fprintf(&b, "%s.%s %s %v\n", w.Module, w.Op, w.Target, w.Value)
		}
		v.sinkTrace = b.String()
		v.faultTrace = in.TraceString()
		v.stats = in.Stats()
		return v
	}
	orig := run(prep.Original)
	out := ChaosAppResult{
		App:        app.Name,
		Stats:      orig.stats,
		FaultTrace: orig.faultTrace,
		MsgErrors:  len(orig.msgErrors),
		SinkWrites: len(prep.Original.IP.IO.Writes),
		Equivalent: true,
	}
	for _, r := range []*Runner{prep.Selective, prep.Exhaustive} {
		v := run(r)
		if m := diffVersions(&orig, &v); m != "" {
			out.Equivalent = false
			out.Mismatch = m
			break
		}
	}
	return out, nil
}

// diffVersions reports the first observable divergence between the
// original version and a managed one, or "" when they are in lockstep.
func diffVersions(orig, v *chaosVersion) string {
	if orig.faultTrace != v.faultTrace {
		return fmt.Sprintf("%s: fault trace diverged:\n--- original\n%s--- %s\n%s",
			v.mode, orig.faultTrace, v.mode, v.faultTrace)
	}
	if orig.sinkTrace != v.sinkTrace {
		return fmt.Sprintf("%s: sink trace diverged:\n--- original\n%s--- %s\n%s",
			v.mode, orig.sinkTrace, v.mode, v.sinkTrace)
	}
	if len(orig.msgErrors) != len(v.msgErrors) {
		return fmt.Sprintf("%s: %d message errors vs %d", v.mode, len(v.msgErrors), len(orig.msgErrors))
	}
	for i := range orig.msgErrors {
		if orig.msgErrors[i] != v.msgErrors[i] {
			return fmt.Sprintf("%s: message error diverged: %q vs %q", v.mode, v.msgErrors[i], orig.msgErrors[i])
		}
	}
	return ""
}

// RenderChaos formats the chaos report. The output contains no measured
// durations, so it is byte-identical across runs and worker counts for
// one seed — the determinism gates compare it directly.
func RenderChaos(res *ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos replay: seed %d, %d messages per version\n", res.Seed, res.Messages)
	fmt.Fprintf(&b, "%-18s %6s %6s %6s %6s | %7s %7s | %s\n",
		"application", "ops", "fail", "drop", "delay", "errors", "writes", "equivalence")
	for _, a := range res.Apps {
		verdict := "OK"
		if !a.Equivalent {
			verdict = "MISMATCH"
		}
		fmt.Fprintf(&b, "%-18s %6d %6d %6d %6d | %7d %7d | %s\n",
			a.App, a.Stats.Ops, a.Stats.Failed, a.Stats.Dropped, a.Stats.Delayed,
			a.MsgErrors, a.SinkWrites, verdict)
	}
	fmt.Fprintf(&b, "equivalent under faults: %d/%d apps\n", res.Equivalent, len(res.Apps))
	for _, a := range res.Apps {
		if !a.Equivalent {
			fmt.Fprintf(&b, "\n%s: %s\n", a.App, a.Mismatch)
		}
	}
	return b.String()
}
