package harness

import (
	"strings"
	"testing"

	"turnstile/internal/corpus"
	"turnstile/internal/workload"
)

func TestRunTable2(t *testing.T) {
	rows := RunTable2()
	out := RenderTable2(rows)
	for _, want := range []string{"Node-RED", "2676", "677", "58.9%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunE1HeadlineClaims(t *testing.T) {
	res, err := RunE1(corpus.All())
	if err != nil {
		t.Fatal(err)
	}
	// claim C1: 190 vs 52 of 285 manual (≈3× more paths)
	if res.ManualTotal != 285 || res.TurnstileTotal != 190 || res.BaselineTotal != 52 {
		t.Fatalf("totals = %d/%d/%d, want 285/190/52",
			res.ManualTotal, res.TurnstileTotal, res.BaselineTotal)
	}
	if ratio := float64(res.TurnstileTotal) / float64(res.BaselineTotal); ratio < 3 {
		t.Fatalf("path ratio = %.2f, want > 3", ratio)
	}
	// 22 apps where only Turnstile found paths (§6.1 reports 22)
	if res.AppsOnlyTurnstile != 22 {
		t.Fatalf("turnstile-only apps = %d, want 22", res.AppsOnlyTurnstile)
	}
	if res.AppsBothFound != 5 {
		t.Fatalf("both-found apps = %d, want 5", res.AppsBothFound)
	}
	// 32 apps where neither found paths
	if res.AppsNeither != 32 {
		t.Fatalf("neither apps = %d, want 32", res.AppsNeither)
	}
	// Turnstile is much faster than the baseline
	if res.Speedup < 3 {
		t.Fatalf("speedup = %.1fx, want >3x (baseline mean %v vs turnstile %v)",
			res.Speedup, res.BaselineMean, res.TurnstileMean)
	}
	out := RenderE1(res)
	for _, want := range []string{"TOTAL", "190", "52", "285", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q", want)
		}
	}
}

func TestPrepareAppVersions(t *testing.T) {
	apps := corpus.All()
	app := corpus.ByName(apps, "camera-archiver")
	prep, err := PrepareApp(app)
	if err != nil {
		t.Fatal(err)
	}
	if prep.SelectiveResult.Invokes == 0 {
		t.Fatal("selective version has no instrumented calls")
	}
	if prep.ExhaustiveResult.Invokes <= prep.SelectiveResult.Invokes {
		t.Fatalf("exhaustive should instrument more: %d vs %d",
			prep.ExhaustiveResult.Invokes, prep.SelectiveResult.Invokes)
	}
	// all three versions process messages and produce identical output
	for i := 0; i < 5; i++ {
		for _, r := range []*Runner{prep.Original, prep.Selective, prep.Exhaustive} {
			if err := r.Process(i); err != nil {
				t.Fatalf("%s message %d: %v", r.Mode, i, err)
			}
		}
	}
	origW := prep.Original.IP.IO.WritesTo("fs")
	for _, r := range []*Runner{prep.Selective, prep.Exhaustive} {
		w := r.IP.IO.WritesTo("fs")
		if len(w) != len(origW) {
			t.Fatalf("%s writes = %d, original = %d", r.Mode, len(w), len(origW))
		}
		for i := range w {
			if w[i].Value != origW[i].Value {
				t.Fatalf("%s write %d = %v, original %v", r.Mode, i, w[i].Value, origW[i].Value)
			}
		}
	}
	// the instrumented versions actually track: labels were applied
	if prep.Selective.IP.Tracker.Stats().Labelled == 0 {
		t.Fatal("selective version never labelled")
	}
	if prep.Exhaustive.IP.Tracker.Stats().Boxed == 0 {
		t.Fatal("exhaustive version never boxed a value")
	}
}

func TestPrepareNonRunnable(t *testing.T) {
	app := corpus.ByName(corpus.All(), "dashboard-api")
	if _, err := PrepareApp(app); err == nil {
		t.Fatal("expected error for non-runnable app")
	}
}

func TestMeasureAndFigures(t *testing.T) {
	// small-but-real E2 over three contrasting apps
	apps := corpus.All()
	subset := []*corpus.App{
		corpus.ByName(apps, "nlp.js"),
		corpus.ByName(apps, "modbus"),
		corpus.ByName(apps, "sensor-logger"),
	}
	opts := E2Options{Messages: 40, Warmup: 5, Repeats: 1}
	var ms []AppMeasurement
	for _, app := range subset {
		m, err := MeasureApp(app, opts)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, *m)
	}
	points := Figure11(ms, workload.Rates)
	if len(points) != len(workload.Rates) {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.SelMin > p.SelMedian || p.SelMedian > p.SelMax {
			t.Fatalf("selective band disordered at %.0f Hz: %+v", p.Rate, p)
		}
		if p.ExhMin > p.ExhMedian || p.ExhMedian > p.ExhMax {
			t.Fatalf("exhaustive band disordered at %.0f Hz: %+v", p.Rate, p)
		}
		if p.SelMin < 0.5 {
			t.Fatalf("implausible relative runtime at %.0f Hz: %+v", p.Rate, p)
		}
	}
	// at the lowest rate the stream is idle-dominated: overhead ≈ 0
	if points[0].SelMedian > 1.15 {
		t.Fatalf("2 Hz selective median = %.3f, want ≈1", points[0].SelMedian)
	}
	// selective must beat exhaustive on the dictionary-heavy app at speed
	var nlp *AppMeasurement
	for i := range ms {
		if ms[i].App == "nlp.js" {
			nlp = &ms[i]
		}
	}
	selHigh := nlp.RelSelective(1000)
	exhHigh := nlp.RelExhaustive(1000)
	if exhHigh < selHigh {
		t.Fatalf("nlp.js at 1000 Hz: exhaustive %.3f should exceed selective %.3f", exhHigh, selHigh)
	}
	rows := Figure12(ms)
	if len(rows) != 3 {
		t.Fatalf("figure 12 rows = %d", len(rows))
	}
	out11 := RenderFigure11(points)
	out12 := RenderFigure12(rows)
	if !strings.Contains(out11, "rate Hz") || !strings.Contains(out12, "nlp.js") {
		t.Fatalf("render output wrong:\n%s\n%s", out11, out12)
	}
	sum := Summarize(ms, points)
	if sum.WorstExhaustive30 == 0 || sum.MedianSelLow == 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestPrepareAppBadPolicy(t *testing.T) {
	app := &corpus.App{
		Name:       "broken",
		Runnable:   true,
		Source:     "let x = 1;",
		PolicyJSON: "{not json",
		SourceName: "none",
	}
	if _, err := PrepareApp(app); err == nil {
		t.Fatal("expected policy error")
	}
}

func TestPrepareAppMissingSource(t *testing.T) {
	app := &corpus.App{
		Name:       "nosource",
		Runnable:   true,
		Source:     "let x = 1;",
		PolicyJSON: `{"rules":[]}`,
		SourceName: "net.socket:ghost:1",
	}
	if _, err := PrepareApp(app); err == nil {
		t.Fatal("expected unknown-source error")
	}
}

func TestMeasureAppPropagatesRuntimeErrors(t *testing.T) {
	app := &corpus.App{
		Name:     "crasher",
		Runnable: true,
		Source: `
const net = require("net");
const sock = net.connect({ host: "h", port: 1 });
sock.on("data", frame => { throw new Error("boom on " + frame); });
`,
		PolicyJSON: `{"rules":[]}`,
		SourceName: "net.socket:h:1",
	}
	_, err := MeasureApp(app, E2Options{Messages: 3, Warmup: 1, Repeats: 1, ServiceScale: 1})
	if err == nil {
		t.Fatal("handler throw should surface from measurement")
	}
}

func TestRunnerModes(t *testing.T) {
	app := corpus.ByName(corpus.All(), "sensor-logger")
	prep, err := PrepareApp(app)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Original.Mode != "original" || prep.Selective.Mode != "selective" || prep.Exhaustive.Mode != "exhaustive" {
		t.Fatalf("modes: %q %q %q", prep.Original.Mode, prep.Selective.Mode, prep.Exhaustive.Mode)
	}
	if prep.Analysis == nil || len(prep.Analysis.Paths) == 0 {
		t.Fatal("analysis missing")
	}
}
