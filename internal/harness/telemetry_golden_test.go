package harness

import (
	"testing"

	"turnstile/internal/corpus"
	"turnstile/internal/telemetry"
)

// Golden tests pinning the three telemetry renderings: the overhead
// breakdown of `turnstile-bench -metrics`, the Metrics.Render table of
// `turnstile run -metrics`, and the two trace export formats. All inputs
// are deterministic (count-based breakdown, synthetic registries, virtual
// clock), so any byte of drift is a real behaviour change.

// TestGoldenBreakdown pins the full overhead-breakdown rendering over a
// fixed three-app subset of the real corpus.
func TestGoldenBreakdown(t *testing.T) {
	var apps []*corpus.App
	for _, name := range []string{"modbus", "sensor-logger", "thermostat-hub"} {
		a := corpus.ByName(corpus.All(), name)
		if a == nil {
			t.Fatalf("corpus app %q missing", name)
		}
		apps = append(apps, a)
	}
	res, err := RunBreakdown(apps, BreakdownOptions{Messages: 20, Parallel: 4, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "overhead_breakdown", RenderBreakdown(res))
}

// TestGoldenMetricsRender pins the metrics table over a synthetic registry
// exercising counters, histograms (including the clamped last bucket) and
// sorting.
func TestGoldenMetricsRender(t *testing.T) {
	m := telemetry.NewMetrics()
	m.Add("dift.check", 12)
	m.Add("dift.label", 4)
	m.Add("host.mqtt.publish", 7)
	m.Add("policy.cache.hit", 30)
	m.Add("policy.cache.miss", 3)
	for _, v := range []int64{0, 1, 1, 2, 3, 5, 8, 1 << 40} {
		m.Observe("dift.check.labels", v)
	}
	checkGolden(t, "metrics_render", m.Render())
}

// fixedTracer builds a tracer fed from a fixed step clock.
func fixedTracer() *telemetry.Tracer {
	tick := int64(100)
	tr := telemetry.NewTracer(8, func() int64 { tick += 10; return tick })
	tr.Record(telemetry.Event{Op: "label", Site: "personal", Labels: []string{"person"}})
	tr.Record(telemetry.Event{Op: "check", Site: "app.js:12:3", Target: "mqtt.publish",
		Labels: []string{"person"}, Recv: []string{"eu"}})
	tr.Record(telemetry.Event{Op: "sink", Site: "mqtt.publish", Target: "alerts/eu",
		Labels: []string{"person"}})
	tr.Record(telemetry.Event{Op: "violation", Site: "app.js:19:5", Detail: "invoke",
		Labels: []string{"person"}, Recv: []string{"us"}})
	return tr
}

// TestGoldenTraceJSON pins the structured trace export format.
func TestGoldenTraceJSON(t *testing.T) {
	data, err := fixedTracer().ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_json", string(data))
}

// TestGoldenChromeTrace pins the chrome-trace (Trace Event Format) export.
func TestGoldenChromeTrace(t *testing.T) {
	data, err := fixedTracer().ExportChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_trace", string(data))
}
