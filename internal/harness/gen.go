package harness

import (
	"fmt"
	"strings"

	"turnstile/internal/core"
	"turnstile/internal/corpus"
	"turnstile/internal/instrument"
)

// The generated-corpus harness scores the seeded stratified generator
// (corpus/strata.go) the same way the attack harness scores the
// hand-written attack corpus: every generated app runs under exhaustive
// instrumentation, implicit flows and audit mode, its event sources are
// pumped with the app's deterministic payload schedule, and the recorded
// violations are matched against the built-in must-catch/must-allow
// ground truth. The report groups scores by stratum so a regression in
// one flow family is visible as that family's row, and is byte-identical
// at any worker count; verify.sh gates on zero missed flows.

// GenOptions configures a generated-corpus run.
type GenOptions struct {
	// N is the number of generated apps; 0 selects a default population
	// of ten apps per stratum.
	N int
	// Seed is the corpus seed: (N, Seed) fully determine the population.
	Seed uint64
	// Parallel is the worker count; 0 selects GOMAXPROCS, 1 runs
	// sequentially. The report is byte-identical either way.
	Parallel int
	// NoResolve deploys each app on the map-walk interpreter.
	NoResolve bool
	// NoVM deploys each app on the tree-walking evaluator (-novm).
	NoVM bool
}

// GenAppResult is one generated app's score.
type GenAppResult struct {
	App      string
	Stratum  string
	Expected int      // ground-truth must-catch flows
	Caught   int      // must-catch flows with a matching violation
	Missed   []string // must-catch prefixes with no matching violation
	Leaked   []string // must-allow prefixes that matched a violation
	Err      string   // non-empty when the app failed to generate or run
	OK       bool
}

// GenStratumRow aggregates one stratum's scores.
type GenStratumRow struct {
	Stratum    string
	Class      string
	Apps       int
	Passed     int
	TP, FN, FP int
}

// GenResult aggregates a generated-corpus run.
type GenResult struct {
	N          int
	Seed       uint64
	Apps       []GenAppResult
	Rows       []GenStratumRow
	Passed     int
	TP, FN, FP int
}

// Precision is TP/(TP+FP); 1 when nothing was flagged wrongly.
func (r *GenResult) Precision() float64 {
	if r.TP+r.FP == 0 {
		return 1
	}
	return float64(r.TP) / float64(r.TP+r.FP)
}

// Recall is TP/(TP+FN); 1 when no must-catch flow escaped.
func (r *GenResult) Recall() float64 {
	if r.TP+r.FN == 0 {
		return 1
	}
	return float64(r.TP) / float64(r.TP+r.FN)
}

// RunGenCorpus generates the (N, Seed) population and scores every app.
func RunGenCorpus(opts GenOptions) (*GenResult, error) {
	if opts.N <= 0 {
		opts.N = 10 * len(corpus.GenStrata())
	}
	apps, err := corpus.GenCorpus(opts.N, opts.Seed)
	if err != nil {
		return nil, err
	}
	results, err := mapIndexed(len(apps), opts.Parallel, func(i int) (GenAppResult, error) {
		return genOne(apps[i], opts)
	})
	if err != nil {
		return nil, err
	}
	res := &GenResult{N: opts.N, Seed: opts.Seed, Apps: results}
	rows := make(map[string]*GenStratumRow)
	for _, s := range corpus.GenStrata() {
		rows[s.Name] = &GenStratumRow{Stratum: s.Name, Class: s.Class}
	}
	for i := range results {
		r := &results[i]
		row := rows[r.Stratum]
		row.Apps++
		if r.OK {
			res.Passed++
			row.Passed++
		}
		row.TP += r.Caught
		row.FN += len(r.Missed)
		row.FP += len(r.Leaked)
		res.TP += r.Caught
		res.FN += len(r.Missed)
		res.FP += len(r.Leaked)
	}
	for _, s := range corpus.GenStrata() {
		if row := rows[s.Name]; row.Apps > 0 {
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

// genOne runs one generated app under the scoring configuration and
// matches its violations against the ground truth.
func genOne(ga *corpus.GenApp, opts GenOptions) (GenAppResult, error) {
	res := GenAppResult{App: ga.Name, Stratum: ga.Stratum, Expected: len(ga.MustCatch)}
	if err := ga.CheckConsistency(); err != nil {
		res.Err = firstLine(err.Error())
		return res, nil
	}
	copts := core.DefaultOptions()
	copts.Mode = instrument.Exhaustive
	copts.ImplicitFlows = true
	copts.Enforce = false // audit: the whole app executes, every violation is recorded
	copts.NoResolve = opts.NoResolve
	copts.NoVM = opts.NoVM
	app, err := core.Manage(ga.Files, ga.Policy, copts)
	if err != nil {
		res.Err = firstLine(err.Error())
		return res, nil
	}
	if len(ga.Sources) > 0 {
		for i := 0; i < ga.Messages; i++ {
			src := ga.Sources[i%len(ga.Sources)]
			if err := app.Emit(src, ga.Event, ga.Payload(i)); err != nil {
				res.Err = firstLine(err.Error())
				return res, nil
			}
		}
	}
	violations := app.Violations()
	match := func(prefix string) bool {
		for _, v := range violations {
			if strings.HasPrefix(v.Site, prefix) {
				return true
			}
		}
		return false
	}
	for _, p := range ga.MustCatch {
		if match(p) {
			res.Caught++
		} else {
			res.Missed = append(res.Missed, p)
		}
	}
	for _, p := range ga.MustAllow {
		if match(p) {
			res.Leaked = append(res.Leaked, p)
		}
	}
	res.OK = res.Err == "" && len(res.Missed) == 0 && len(res.Leaked) == 0
	return res, nil
}

// RenderGen formats the stratified precision/recall report. No durations
// or other host-dependent values: one build renders it byte-identically
// at any -parallel level, so the determinism gates compare it directly.
func RenderGen(res *GenResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Generated corpus: %d apps, seed %d (exhaustive instrumentation, implicit flows, audit mode)\n",
		res.N, res.Seed)
	fmt.Fprintf(&b, "%-16s %-44s %5s %7s %7s %7s %6s\n",
		"stratum", "flow class", "apps", "passed", "caught", "missed", "false+")
	for _, row := range res.Rows {
		fmt.Fprintf(&b, "%-16s %-44s %5d %7d %7d %7d %6d\n",
			row.Stratum, row.Class, row.Apps, row.Passed, row.TP, row.FN, row.FP)
	}
	fmt.Fprintf(&b, "must-catch flows: %d caught, %d missed; false positives: %d\n", res.TP, res.FN, res.FP)
	fmt.Fprintf(&b, "precision %.3f  recall %.3f\n", res.Precision(), res.Recall())
	for _, a := range res.Apps {
		if a.Err != "" {
			fmt.Fprintf(&b, "\n%s: error: %s\n", a.App, a.Err)
		}
		for _, m := range a.Missed {
			fmt.Fprintf(&b, "\n%s: MISSED must-catch flow %s\n", a.App, m)
		}
		for _, l := range a.Leaked {
			fmt.Fprintf(&b, "\n%s: false positive on sanctioned flow %s\n", a.App, l)
		}
	}
	return b.String()
}
