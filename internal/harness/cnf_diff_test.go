package harness

import (
	"fmt"
	"strings"
	"testing"

	"turnstile/internal/corpus"
)

// The corpus-wide flat-vs-CNF differential: every runnable app runs twice,
// once under the flat placeholder policy and once under a mirrored-clause
// policy where each label l becomes the OR-clause "l|lM" over a rule graph
// extended with an isomorphic mirrored copy. By the mirror-equivalence
// property (see policy.TestPropMirrorEquivalence) every flow decision is
// identical, so sink traces, per-message errors, violations and tracker
// stats must agree exactly — proving the clause path of FlowAllowed does
// not perturb the flat fast path's observable behaviour. The whole
// comparison runs at -parallel 1 and -parallel 8 and must be
// digest-identical across worker counts.

// mirrorPolicy is placeholderPolicy with every label mirrored into a
// two-atom clause and the rule DAG doubled isomorphically.
const mirrorPolicy = `{
  "labellers": {
    "Msg": "v => v.indexOf(\"E\") >= 0 ? \"Alpha|AlphaM\" : \"Beta|BetaM\""
  },
  "rules": [ "Alpha -> Beta", "AlphaM -> BetaM", "Beta -> Gamma", "BetaM -> GammaM" ],
  "injections": [ { "object": "frame", "labeller": "Msg" } ]
}`

const cnfDiffMessages = 12

// cnfDigest is one app+policy observable record, stripped of label text
// (the two policies name different labels by construction).
func cnfDigest(app *corpus.App, policyJSON string) (string, error) {
	clone := *app
	clone.PolicyJSON = policyJSON
	prep, err := PrepareAppOpt(&clone, nil, false)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, r := range []*Runner{prep.Selective, prep.Exhaustive} {
		fmt.Fprintf(&b, "== %s\n", r.Mode)
		for i := 0; i < cnfDiffMessages; i++ {
			if err := r.Process(i); err != nil {
				fmt.Fprintf(&b, "msg %d: %v\n", i, err)
			}
		}
		for _, w := range r.IP.IO.Writes {
			fmt.Fprintf(&b, "%s.%s %s %v\n", w.Module, w.Op, w.Target, w.Value)
		}
		for _, v := range r.IP.Tracker.Violations() {
			fmt.Fprintf(&b, "violation %s %s %s\n", v.Site, v.Op, v.Reason)
		}
		fmt.Fprintf(&b, "stats %+v\n", r.IP.Tracker.Stats())
	}
	return b.String(), nil
}

func runCNFDiff(t *testing.T, parallel int) []string {
	t.Helper()
	apps := corpus.Runnable(corpus.All())
	if len(apps) == 0 {
		t.Fatal("no runnable corpus apps")
	}
	type pair struct {
		app       string
		flat, cnf string
	}
	pairs, err := mapIndexed(len(apps), parallel, func(i int) (pair, error) {
		flat, err := cnfDigest(apps[i], apps[i].PolicyJSON)
		if err != nil {
			return pair{}, fmt.Errorf("%s flat: %w", apps[i].Name, err)
		}
		cnf, err := cnfDigest(apps[i], mirrorPolicy)
		if err != nil {
			return pair{}, fmt.Errorf("%s mirrored: %w", apps[i].Name, err)
		}
		return pair{app: apps[i].Name, flat: flat, cnf: cnf}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	digests := make([]string, len(pairs))
	for i, p := range pairs {
		if p.flat != p.cnf {
			t.Errorf("%s: flat and mirrored-CNF runs diverge:\n-- flat --\n%s\n-- mirrored --\n%s",
				p.app, firstDiffContext(p.flat, p.cnf), firstDiffContext(p.cnf, p.flat))
		}
		digests[i] = p.app + "\n" + p.flat
	}
	return digests
}

// firstDiffContext trims a digest to the first line that differs, for
// readable failure output.
func firstDiffContext(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range la {
		if i >= len(lb) || la[i] != lb[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			hi := i + 3
			if hi > len(la) {
				hi = len(la)
			}
			return fmt.Sprintf("(line %d)\n%s", i+1, strings.Join(la[lo:hi], "\n"))
		}
	}
	return "(prefix equal, lengths differ)"
}

func TestCNFDifferentialCorpusWide(t *testing.T) {
	seq := runCNFDiff(t, 1)
	par := runCNFDiff(t, 8)
	if len(seq) != len(par) {
		t.Fatalf("digest counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("digest %d differs between -parallel 1 and -parallel 8", i)
		}
	}
}

// TestCNFFailClosedAgreement runs the fail-closed crash apps whose denial
// comes from the ⊤ truncation over-approximation under a mirrored-clause
// crash policy: the fail-closed outcome kind must not change when labels
// are clauses.
func TestCNFFailClosedAgreement(t *testing.T) {
	const mirrorCrashPolicy = `{
  "labellers": { "Msg": "v => \"Alpha|AlphaM\"" },
  "rules": [ "Alpha -> Beta", "AlphaM -> BetaM" ]
}`
	for _, name := range []string{"deep-data", "cyclic-labeled"} {
		flat, err := crashOne(CrashApp{Name: name, Want: "violation"}, CrashOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cnf, err := crashOne(CrashApp{Name: name, Want: "violation", Policy: mirrorCrashPolicy}, CrashOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if flat.Kind != cnf.Kind {
			t.Errorf("%s: fail-closed outcome differs: flat %q vs mirrored %q (%s / %s)",
				name, flat.Kind, cnf.Kind, flat.Detail, cnf.Detail)
		}
		if cnf.Kind != "violation" {
			t.Errorf("%s: mirrored crash app classified %q, want violation (%s)", name, cnf.Kind, cnf.Detail)
		}
	}
}
