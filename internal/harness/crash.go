package harness

import (
	"embed"
	"errors"
	"fmt"
	"strings"

	"turnstile/internal/core"
	"turnstile/internal/faults"
	"turnstile/internal/guard"
	"turnstile/internal/interp"
)

// The crash corpus is a battery of adversarial applications — unbounded
// loops, unbounded recursion, exponential allocation, parser-depth abuse,
// timer chains, labelled structures built to defeat the tracker — each of
// which must terminate with a typed error under the guard's budgets: a
// *guard.BudgetError, a *guard.PipelineError, or an enforced privacy
// violation. No app may hang, crash the process, or surface an untyped
// error, and the whole report must be byte-identical at any worker count.

//go:embed testdata/crash/*.js
var crashFS embed.FS

// CrashApp is one adversarial program.
type CrashApp struct {
	// Name is the testdata/crash/<Name>.js source.
	Name string
	// Want is the expected outcome kind: a guard budget kind ("fuel",
	// "depth", "alloc", "deadline"), a contained pipeline stage ("parse"),
	// or "violation" for an enforced privacy denial.
	Want string
	// Policy overrides crashPolicy for apps that abuse the policy itself.
	Policy string
}

// crashPolicy labels everything Alpha with a sink-incompatible rule, so a
// checked flow that keeps its label (or gains ⊤) is denied.
const crashPolicy = `{
  "labellers": { "Msg": "v => \"Alpha\"" },
  "rules": [ "Alpha -> Beta" ]
}`

// spinPolicy's label function never returns: the guard must trip inside
// the labeller call.
const spinPolicy = `{
  "labellers": { "Spin": "v => { while (true) { } }" },
  "rules": [ "Alpha -> Beta" ]
}`

// CrashApps lists the corpus with expected outcomes.
func CrashApps() []CrashApp {
	return []CrashApp{
		{Name: "infinite-loop", Want: "fuel"},
		{Name: "sink-flood", Want: "fuel"},
		{Name: "labeller-abuse", Want: "fuel", Policy: spinPolicy},
		{Name: "infinite-recursion", Want: "depth"},
		{Name: "mutual-recursion", Want: "depth"},
		{Name: "huge-alloc", Want: "alloc"},
		{Name: "string-blowup", Want: "alloc"},
		{Name: "timer-chain", Want: "deadline"},
		{Name: "deep-expr", Want: "parse"},
		{Name: "deep-literal", Want: "parse"},
		{Name: "deep-data", Want: "violation"},
		{Name: "cyclic-labeled", Want: "violation"},
	}
}

// CrashLimits is the tight budget envelope every crash app runs under.
func CrashLimits() guard.Limits {
	return guard.Limits{
		Fuel:     1_000_000,
		MaxDepth: 128,
		MaxAlloc: 32_768,
		// 20 chained timers: low enough that the timer-chain app trips the
		// deadline before its nested callbacks trip the depth budget
		DeadlineTicks: 20_000,
	}
}

// CrashOptions configures a crash-corpus run.
type CrashOptions struct {
	// Parallel is the worker count; 0 selects GOMAXPROCS, 1 runs
	// sequentially. The report is byte-identical either way.
	Parallel int
	// Schedule, when non-nil, additionally injects faults while the
	// adversarial programs run (the -chaos composition).
	Schedule *faults.Schedule
	// NoResolve deploys each app on the map-walk interpreter with the
	// resolver fast paths disabled (A/B escape hatch).
	NoResolve bool
	// NoVM deploys each app on the tree-walking evaluator (-novm).
	NoVM bool
}

// CrashAppResult is one app's outcome.
type CrashAppResult struct {
	App    string
	Want   string
	Kind   string // observed outcome kind
	Detail string // one-line typed-error rendering
	OK     bool   // Kind == Want
}

// CrashCorpusResult aggregates a run.
type CrashCorpusResult struct {
	Limits guard.Limits
	Apps   []CrashAppResult
	Passed int
}

// RunCrashCorpus runs every adversarial app under CrashLimits with the
// tracker in fail-closed enforcement mode and classifies the outcome.
func RunCrashCorpus(opts CrashOptions) (*CrashCorpusResult, error) {
	apps := CrashApps()
	results, err := mapIndexed(len(apps), opts.Parallel, func(i int) (CrashAppResult, error) {
		return crashOne(apps[i], opts)
	})
	if err != nil {
		return nil, err
	}
	res := &CrashCorpusResult{Limits: CrashLimits(), Apps: results}
	for i := range results {
		if results[i].OK {
			res.Passed++
		}
	}
	return res, nil
}

func crashOne(ca CrashApp, opts CrashOptions) (CrashAppResult, error) {
	src, err := crashFS.ReadFile("testdata/crash/" + ca.Name + ".js")
	if err != nil {
		return CrashAppResult{}, fmt.Errorf("harness: crash app %s: %w", ca.Name, err)
	}
	pol := ca.Policy
	if pol == "" {
		pol = crashPolicy
	}
	lim := CrashLimits()
	copts := core.DefaultOptions()
	copts.Guard = &lim
	copts.FailClosed = true
	copts.Faults = opts.Schedule
	copts.NoResolve = opts.NoResolve
	copts.NoVM = opts.NoVM
	_, runErr := core.Manage(map[string]string{ca.Name + ".js": string(src)}, pol, copts)
	kind, detail := ClassifyCrash(runErr)
	return CrashAppResult{App: ca.Name, Want: ca.Want, Kind: kind, Detail: detail, OK: kind == ca.Want}, nil
}

// ClassifyCrash maps a pipeline error to its typed outcome kind:
// the budget kind for *guard.BudgetError, the stage for
// *guard.PipelineError, "violation" for an enforced privacy denial,
// "runtime" for a typed interpreter error, "none" for clean completion —
// and "untyped" for anything else, which the crash gate treats as a
// failure.
func ClassifyCrash(err error) (kind, detail string) {
	if err == nil {
		return "none", ""
	}
	var be *guard.BudgetError
	if errors.As(err, &be) {
		return string(be.Kind), be.Error()
	}
	var pe *guard.PipelineError
	if errors.As(err, &pe) {
		return pe.Stage, firstLine(pe.Error())
	}
	var throw *interp.Throw
	if errors.As(err, &throw) {
		msg := throw.Error()
		if strings.Contains(msg, "PrivacyViolation") {
			return "violation", firstLine(msg)
		}
		return "throw", firstLine(msg)
	}
	var re *interp.RuntimeError
	if errors.As(err, &re) {
		return "runtime", firstLine(re.Error())
	}
	return "untyped", firstLine(err.Error())
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

// RenderCrash formats the crash report. It contains no durations or other
// host-dependent values, so one build renders it byte-identically at any
// -parallel level — the determinism gates compare it directly.
func RenderCrash(res *CrashCorpusResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Crash corpus: %d adversarial apps under fuel=%d depth=%d alloc=%d deadline=%d\n",
		len(res.Apps), res.Limits.Fuel, res.Limits.MaxDepth, res.Limits.MaxAlloc, res.Limits.DeadlineTicks)
	fmt.Fprintf(&b, "%-20s %-10s %-10s %s\n", "application", "expected", "observed", "verdict")
	for _, a := range res.Apps {
		verdict := "OK"
		if !a.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-20s %-10s %-10s %s\n", a.App, a.Want, a.Kind, verdict)
	}
	fmt.Fprintf(&b, "typed termination: %d/%d apps\n", res.Passed, len(res.Apps))
	for _, a := range res.Apps {
		if !a.OK {
			fmt.Fprintf(&b, "\n%s: want %s, got %s: %s\n", a.App, a.Want, a.Kind, a.Detail)
		}
	}
	return b.String()
}
