package telemetry

import (
	"encoding/json"
	"testing"
)

func TestTracerSeqAndClock(t *testing.T) {
	tick := int64(0)
	tr := NewTracer(8, func() int64 { return tick })
	tr.Record(Event{Op: "a"})
	tick = 5
	tr.Record(Event{Op: "b"})
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[0].TS != 0 || evs[1].Seq != 2 || evs[1].TS != 5 {
		t.Fatalf("unexpected events: %+v", evs)
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(3, nil)
	for i := 0; i < 5; i++ {
		tr.Record(Event{Op: "e", Detail: string(rune('a' + i))})
	}
	if tr.Total() != 5 || tr.Len() != 3 || tr.Dropped() != 2 {
		t.Fatalf("total=%d len=%d dropped=%d", tr.Total(), tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	// oldest-first: events 3, 4, 5 survive
	if evs[0].Seq != 3 || evs[1].Seq != 4 || evs[2].Seq != 5 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
}

func TestTracerExportJSONRoundTrip(t *testing.T) {
	tr := NewTracer(4, nil)
	tr.Record(Event{Op: "check", Site: "app.js:3:1", Labels: []string{"eu", "person"}})
	data, err := tr.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total   int64   `json:"total"`
		Dropped int64   `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, data)
	}
	if doc.Total != 1 || len(doc.Events) != 1 || doc.Events[0].Op != "check" {
		t.Fatalf("round trip lost data: %+v", doc)
	}
}

func TestTracerExportChromeTrace(t *testing.T) {
	tr := NewTracer(4, func() int64 { return 42 })
	tr.Record(Event{Op: "sink", Site: "mqtt.publish", Target: "alerts", Labels: []string{"person"}})
	data, err := tr.ExportChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, data)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("want 1 trace event, got %d", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev["name"] != "sink" || ev["ph"] != "i" || ev["ts"] != float64(42) {
		t.Fatalf("unexpected chrome event: %v", ev)
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0, nil)
	tr.Record(Event{Op: "x"})
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}
