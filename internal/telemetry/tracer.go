package telemetry

import (
	"encoding/json"
	"sync"
)

// Event is one structured trace record: a DIFT operation, a sink write, a
// policy violation, or a host-module call, with the privacy labels in
// play and the virtual-clock tick it happened at. Label slices must be
// handed in sorted (policy.LabelSet.Slice already is) so the encoded
// trace is deterministic.
type Event struct {
	Seq    int64    `json:"seq"`
	TS     int64    `json:"ts"` // virtual-clock ticks, never wall time
	Op     string   `json:"op"`
	Site   string   `json:"site,omitempty"`
	Target string   `json:"target,omitempty"`
	Labels []string `json:"labels,omitempty"`
	Recv   []string `json:"recv,omitempty"`
	Detail string   `json:"detail,omitempty"`
}

// Tracer records events into a bounded ring buffer. When the buffer is
// full the oldest events are overwritten; Dropped reports how many were
// lost. Sequence numbers and timestamps are assigned at record time, so a
// trace is a deterministic function of the operations performed and the
// virtual clock — wall time never appears.
type Tracer struct {
	mu    sync.Mutex
	now   func() int64 // virtual clock; nil pins every timestamp to 0
	buf   []Event
	start int // index of the oldest event
	n     int // live events in buf
	seq   int64
	total int64
}

// DefaultTraceCapacity is the ring size the CLIs use for -trace.
const DefaultTraceCapacity = 65536

// NewTracer creates a tracer over a ring of the given capacity whose
// timestamps come from now (typically faults.Clock.Now). capacity <= 0
// selects DefaultTraceCapacity.
func NewTracer(capacity int, now func() int64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{now: now, buf: make([]Event, 0, capacity)}
}

// Record appends an event, stamping its sequence number and timestamp.
func (t *Tracer) Record(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev.Seq = t.seq
	if t.now != nil {
		ev.TS = t.now()
	}
	t.total++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		t.n++
		return
	}
	// ring full: overwrite the oldest
	t.buf[t.start] = ev
	t.start = (t.start + 1) % len(t.buf)
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Total returns the number of events ever recorded.
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - int64(t.n)
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// traceDoc is the JSON export envelope.
type traceDoc struct {
	Total   int64   `json:"total"`
	Dropped int64   `json:"dropped"`
	Events  []Event `json:"events"`
}

// ExportJSON renders the trace as indented JSON: an envelope with the
// total/dropped tallies and the retained events oldest-first.
func (t *Tracer) ExportJSON() ([]byte, error) {
	return json.MarshalIndent(traceDoc{Total: t.Total(), Dropped: t.Dropped(), Events: t.Events()}, "", "  ")
}

// chromeEvent is one entry of the chrome://tracing (Trace Event Format)
// export: an instant event on a single pid/tid track, timestamped in
// virtual ticks (standing in for microseconds).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args,omitempty"`
}

// ExportChromeTrace renders the retained events in the Trace Event
// Format, loadable in chrome://tracing and Perfetto.
func (t *Tracer) ExportChromeTrace() ([]byte, error) {
	events := t.Events()
	out := make([]chromeEvent, 0, len(events))
	for _, ev := range events {
		args := map[string]any{"seq": ev.Seq}
		if ev.Site != "" {
			args["site"] = ev.Site
		}
		if ev.Target != "" {
			args["target"] = ev.Target
		}
		if len(ev.Labels) > 0 {
			args["labels"] = ev.Labels
		}
		if len(ev.Recv) > 0 {
			args["recv"] = ev.Recv
		}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		out = append(out, chromeEvent{
			Name: ev.Op, Cat: "dift", Phase: "i", TS: ev.TS, PID: 1, TID: 1, Scope: "t", Args: args,
		})
	}
	return json.MarshalIndent(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: out}, "", "  ")
}
