// Package telemetry is Turnstile's zero-dependency observability layer:
// lock-cheap counters and histograms for the DIFT hot path, a deterministic
// structured event tracer, and renderers for the metric tables the bench
// CLI emits.
//
// Design constraints (see DESIGN.md, "Telemetry"):
//
//   - Disabled must be free. Every instrumented component holds a nilable
//     pointer (a *Metrics, a *Tracer, or pre-resolved *Counter handles) and
//     guards each hook with a single nil check, so the telemetry-off hot
//     path differs from the pre-telemetry code by one predictable branch.
//     The benchmark gate in scripts/verify.sh holds this line.
//
//   - Enabled must be deterministic. Counters count operations, histograms
//     bucket operation-derived quantities (label-set sizes, virtual-clock
//     latencies), and the tracer timestamps events on the interpreter's
//     virtual clock — never the wall clock. A run's telemetry is therefore
//     a pure function of the executed operations: byte-identical across
//     repeats, worker counts, and chaos replays of the same seed.
//
//   - Zero dependencies. The package imports only the standard library and
//     nothing from this repository, so every layer (policy, dift, interp,
//     nodered, harness, CLIs) can feed it without import cycles.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Interpreter fast-path counter names. The resolver/slot-environment
// machinery (internal/resolve, internal/interp) accumulates these locally
// and flushes them here; the "interp." prefix keeps them out of the
// "dift."-prefixed overhead-breakdown tables, which must stay
// byte-identical with the fast paths on or off.
const (
	CtrEnvSlotReads  = "interp.env.slot_reads"
	CtrEnvDynReads   = "interp.env.dyn_reads"
	CtrEnvSlotWrites = "interp.env.slot_writes"
	CtrEnvDynWrites  = "interp.env.dyn_writes"
	CtrICHits        = "interp.ic.hits"
	CtrICMisses      = "interp.ic.misses"

	CtrResolveScopes   = "interp.resolve.scopes"
	CtrResolveSlots    = "interp.resolve.slots"
	CtrResolveResolved = "interp.resolve.resolved"
	CtrResolveDynamic  = "interp.resolve.dynamic"
)

// Serve-daemon counter names, flushed once per tenant when the shutdown
// drain completes (internal/serve).
const (
	CtrServeAdmitted   = "serve.admitted"
	CtrServeProcessed  = "serve.processed"
	CtrServeDenied     = "serve.denied"
	CtrServeShed       = "serve.shed"
	CtrServeDrained    = "serve.drained"
	CtrServeAbandoned  = "serve.abandoned"
	CtrServeReloads    = "serve.reloads"
	CtrServeViolations = "serve.violations"
)

// Counter is one monotonically increasing metric. Handles are resolved
// once (Metrics.Counter) and then incremented lock-free, so a hot loop
// pays one atomic add per event and no map lookups.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// histBuckets is the fixed bucket count of every histogram: bucket i
// holds values v with 2^(i-1) <= v < 2^i (bucket 0 holds v <= 0), and the
// last bucket absorbs everything larger.
const histBuckets = 20

// Histogram is a power-of-two-bucket histogram over non-negative int64
// observations (label-set sizes, virtual-clock ticks). Observations are
// lock-free atomic adds.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
		if idx >= histBuckets {
			idx = histBuckets - 1
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets returns the per-bucket counts.
func (h *Histogram) Buckets() [histBuckets]int64 {
	var out [histBuckets]int64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// bucketLabel names bucket i by its inclusive upper bound.
func bucketLabel(i int) string {
	if i == 0 {
		return "≤0"
	}
	if i == histBuckets-1 {
		return fmt.Sprintf(">%d", int64(1)<<uint(i-1))
	}
	return fmt.Sprintf("≤%d", (int64(1)<<uint(i))-1)
}

// Metrics is a named registry of counters and histograms. Handle
// resolution (Counter/Histogram) takes a mutex; the returned handles are
// lock-free. One Metrics instance belongs to one application run; the
// harness aggregates across apps after the runs complete.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Add increments the named counter by n (resolving it each call; hot
// paths should hold a *Counter handle instead).
func (m *Metrics) Add(name string, n int64) { m.Counter(name).Add(n) }

// Histogram returns the named histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Observe records v in the named histogram.
func (m *Metrics) Observe(name string, v int64) { m.Histogram(name).Observe(v) }

// CounterValue returns the named counter's value (0 when absent).
func (m *Metrics) CounterValue(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// Counters returns a name→value snapshot of every counter.
func (m *Metrics) Counters() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for name, c := range m.counters {
		out[name] = c.Value()
	}
	return out
}

// CountersWithPrefix returns the snapshot restricted to names with the
// given prefix, with the prefix stripped.
func (m *Metrics) CountersWithPrefix(prefix string) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range m.Counters() {
		if strings.HasPrefix(name, prefix) {
			out[name[len(prefix):]] = v
		}
	}
	return out
}

// SumWithPrefix sums every counter whose name has the prefix.
func (m *Metrics) SumWithPrefix(prefix string) int64 {
	var total int64
	for name, v := range m.Counters() {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

// Render formats the registry as a fixed-width table: counters sorted by
// name, then histograms sorted by name with their non-empty buckets. The
// output is a pure function of the recorded values, so identical runs
// render byte-identically.
func (m *Metrics) Render() string {
	m.mu.Lock()
	cnames := make([]string, 0, len(m.counters))
	for n := range m.counters {
		cnames = append(cnames, n)
	}
	hnames := make([]string, 0, len(m.hists))
	for n := range m.hists {
		hnames = append(hnames, n)
	}
	counters := make(map[string]int64, len(cnames))
	for _, n := range cnames {
		counters[n] = m.counters[n].Value()
	}
	hists := make(map[string]*Histogram, len(hnames))
	for _, n := range hnames {
		hists[n] = m.hists[n]
	}
	m.mu.Unlock()

	sort.Strings(cnames)
	sort.Strings(hnames)
	var b strings.Builder
	b.WriteString("metrics\n")
	if len(cnames) == 0 && len(hnames) == 0 {
		b.WriteString("  (empty)\n")
		return b.String()
	}
	for _, n := range cnames {
		fmt.Fprintf(&b, "  %-40s %10d\n", n, counters[n])
	}
	for _, n := range hnames {
		h := hists[n]
		fmt.Fprintf(&b, "  %-40s count %d sum %d", n, h.Count(), h.Sum())
		buckets := h.Buckets()
		for i, c := range buckets {
			if c > 0 {
				fmt.Fprintf(&b, " %s:%d", bucketLabel(i), c)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
