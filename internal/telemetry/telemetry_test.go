package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if m.Counter("a") != c {
		t.Fatal("Counter must return the same handle for the same name")
	}
	if got := m.CounterValue("a"); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	if got := m.CounterValue("missing"); got != 0 {
		t.Fatalf("CounterValue(missing) = %d, want 0", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.Counter("shared")
			for i := 0; i < 1000; i++ {
				c.Inc()
				m.Observe("h", int64(i%7))
			}
		}()
	}
	wg.Wait()
	if got := m.CounterValue("shared"); got != 8000 {
		t.Fatalf("shared = %d, want 8000", got)
	}
	if got := m.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{-3, 0, 1, 2, 3, 4, 1 << 30} {
		h.Observe(v)
	}
	b := h.Buckets()
	// -3 and 0 land in bucket 0; 1 in bucket 1; 2,3 in bucket 2; 4 in
	// bucket 3; 1<<30 clamps into the last bucket.
	if b[0] != 2 || b[1] != 1 || b[2] != 2 || b[3] != 1 || b[histBuckets-1] != 1 {
		t.Fatalf("unexpected buckets: %v", b)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != -3+0+1+2+3+4+(1<<30) {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestPrefixHelpers(t *testing.T) {
	m := NewMetrics()
	m.Add("dift.label", 2)
	m.Add("dift.check", 3)
	m.Add("host.fs.readFile", 7)
	got := m.CountersWithPrefix("dift.")
	if len(got) != 2 || got["label"] != 2 || got["check"] != 3 {
		t.Fatalf("CountersWithPrefix = %v", got)
	}
	if s := m.SumWithPrefix("host."); s != 7 {
		t.Fatalf("SumWithPrefix = %d, want 7", s)
	}
}

func TestRenderDeterministicAndSorted(t *testing.T) {
	m := NewMetrics()
	m.Add("zz", 1)
	m.Add("aa", 2)
	m.Observe("hist.x", 3)
	a, b := m.Render(), m.Render()
	if a != b {
		t.Fatal("Render must be deterministic")
	}
	if strings.Index(a, "aa") > strings.Index(a, "zz") {
		t.Fatalf("counters not sorted:\n%s", a)
	}
	if !strings.Contains(a, "hist.x") {
		t.Fatalf("histogram missing:\n%s", a)
	}
	empty := NewMetrics().Render()
	if !strings.Contains(empty, "(empty)") {
		t.Fatalf("empty render = %q", empty)
	}
}
