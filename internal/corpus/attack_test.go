package corpus

import (
	"regexp"
	"strings"
	"testing"

	"turnstile/internal/core"
	"turnstile/internal/instrument"
	"turnstile/internal/policy"
)

func TestAttackCorpusShape(t *testing.T) {
	apps := AttackApps()
	if len(apps) < 8 {
		t.Fatalf("attack corpus has %d apps, want >= 8", len(apps))
	}
	seen := map[string]bool{}
	sitePat := regexp.MustCompile(`^[a-z-]+\.js:\d+:$`)
	for _, a := range apps {
		if a.Name == "" || seen[a.Name] {
			t.Fatalf("missing or duplicate app name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Vector == "" || a.Source == "" || a.Policy == "" {
			t.Fatalf("%s: incomplete app", a.Name)
		}
		if len(a.MustCatch) == 0 {
			t.Fatalf("%s: no ground truth", a.Name)
		}
		for _, p := range append(append([]string{}, a.MustCatch...), a.MustAllow...) {
			ok := sitePat.MatchString(p) ||
				strings.HasPrefix(p, "declassify:") || strings.HasPrefix(p, "endorse:")
			if !ok {
				t.Fatalf("%s: malformed ground-truth prefix %q", a.Name, p)
			}
			if sitePat.MatchString(p) && !strings.HasPrefix(p, a.Name+".js:") {
				t.Fatalf("%s: prefix %q names a different file", a.Name, p)
			}
		}
		// sink-site prefixes must reference lines that exist in the source
		lines := strings.Count(a.Source, "\n")
		for _, p := range a.MustCatch {
			var ln int
			if n, _ := fmtSscanfLine(p, a.Name); n > 0 {
				ln = n
			} else {
				continue
			}
			if ln < 1 || ln > lines {
				t.Fatalf("%s: ground-truth line %d out of range (source has %d lines)", a.Name, ln, lines)
			}
		}
		// every policy must parse (stub compiler: structure and CNF blocks
		// are validated without evaluating labeller sources)
		stub := func(string) (policy.LabelFunc, error) {
			return func(...any) (policy.LabelSet, error) { return nil, nil }, nil
		}
		if _, err := policy.ParseJSON([]byte(a.Policy), stub); err != nil {
			t.Fatalf("%s: policy does not parse: %v", a.Name, err)
		}
	}
	if AttackByName(apps, apps[0].Name) != apps[0] {
		t.Fatal("AttackByName lookup failed")
	}
	if AttackByName(apps, "no-such-app") != nil {
		t.Fatal("AttackByName returned an app for an unknown name")
	}
}

func fmtSscanfLine(prefix, app string) (int, bool) {
	rest, ok := strings.CutPrefix(prefix, app+".js:")
	if !ok {
		return 0, false
	}
	rest = strings.TrimSuffix(rest, ":")
	n := 0
	for _, c := range rest {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, n > 0
}

// TestAttackCorpusDeterministicOrder pins the corpus order: the rendered
// precision/recall table is compared byte-for-byte across runs, so the app
// sequence is part of the contract.
func TestAttackCorpusDeterministicOrder(t *testing.T) {
	a, b := AttackApps(), AttackApps()
	if len(a) != len(b) {
		t.Fatal("corpus size unstable")
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("order unstable at %d: %s vs %s", i, a[i].Name, b[i].Name)
		}
	}
}

// TestDynamicPropSmuggleNeedsCNFTraversal shows the CNF deep property walk
// is load-bearing: under a flat policy (identical but for the CNF-enabling
// block) the property-stashed flow escapes; under the shipped policy it is
// caught.
func TestDynamicPropSmuggleNeedsCNFTraversal(t *testing.T) {
	app := AttackByName(AttackApps(), "dynamic-prop-smuggle")
	if app == nil {
		t.Fatal("dynamic-prop-smuggle missing from corpus")
	}
	run := func(pol string) []string {
		t.Helper()
		opts := core.DefaultOptions()
		opts.Mode = instrument.Exhaustive
		opts.ImplicitFlows = true
		opts.Enforce = false
		m, err := core.Manage(map[string]string{app.Name + ".js": app.Source}, pol, opts)
		if err != nil {
			t.Fatal(err)
		}
		var sites []string
		for _, v := range m.Violations() {
			sites = append(sites, v.Site)
		}
		return sites
	}
	matches := func(sites []string, prefix string) bool {
		for _, s := range sites {
			if strings.HasPrefix(s, prefix) {
				return true
			}
		}
		return false
	}
	catch := app.MustCatch[0]
	if !matches(run(app.Policy), catch) {
		t.Fatalf("CNF policy missed the smuggled flow at %s", catch)
	}
	if matches(run(attackPolicy("")), catch) {
		t.Fatalf("flat policy caught %s — the CNF property traversal is not load-bearing", catch)
	}
}
