package corpus

import (
	"strings"
	"testing"

	"turnstile/internal/baseline"
	"turnstile/internal/parser"
	"turnstile/internal/taint"
)

// TestUnitDetectionTaxonomy pins each flow unit's advertised detection
// class (§6.1) against the analyzers themselves, in isolation: a unit
// whose doc comment claims "detected only by Turnstile's type-sensitive
// interprocedural analysis" must actually be found by taint.Analyze,
// missed by the baseline, and lost again when TypeSensitive is ablated.
// The calibration test pins the corpus-wide totals; this one pins the
// per-unit reasons those totals decompose the way Fig. 10 says.
func TestUnitDetectionTaxonomy(t *testing.T) {
	build := func(emit func(*strings.Builder, *int)) []taint.File {
		var b strings.Builder
		header(&b, "unit-tax")
		u := 0
		emit(&b, &u)
		prog, err := parser.Parse("unit-tax.js", b.String())
		if err != nil {
			t.Fatalf("unit source does not parse: %v", err)
		}
		return []taint.File{{Name: "unit-tax.js", Prog: prog}}
	}
	ablated := taint.DefaultOptions()
	ablated.TypeSensitive = false

	cases := []struct {
		name string
		emit func(*strings.Builder, *int)
		// expected path counts per analyzer on the isolated unit
		turnstile, turnstileAblated, baseline int
	}{
		// the ablation loses even the "direct" unit: its handler lambda is
		// a user-function boundary, and without type propagation the
		// event payload parameter never acquires a source type
		{"typed-interproc", unitTypedInterproc, 1, 0, 0},
		{"direct", unitDirect, 1, 0, 1},
		{"prototype", unitPrototype, 0, 0, 1},
		{"framework", unitFramework, 0, 0, 0},
	}
	for _, tc := range cases {
		files := build(tc.emit)
		if got := len(taint.Analyze(files, taint.DefaultOptions()).Paths); got != tc.turnstile {
			t.Errorf("%s: turnstile found %d paths, want %d", tc.name, got, tc.turnstile)
		}
		if got := len(taint.Analyze(files, ablated).Paths); got != tc.turnstileAblated {
			t.Errorf("%s: type-ablated turnstile found %d paths, want %d", tc.name, got, tc.turnstileAblated)
		}
		if got := len(baseline.Analyze(files).Paths); got != tc.baseline {
			t.Errorf("%s: baseline found %d paths, want %d", tc.name, got, tc.baseline)
		}
	}
}
