package corpus

import (
	"strings"
	"testing"

	"turnstile/internal/baseline"
	"turnstile/internal/taint"
)

func TestCorpusShape(t *testing.T) {
	apps := All()
	if len(apps) != 61 {
		t.Fatalf("apps = %d, want 61", len(apps))
	}
	counts := map[Category]int{}
	manual := 0
	for _, a := range apps {
		counts[a.Category]++
		manual += a.GroundTruth
	}
	want := map[Category]int{
		TurnstileOnly: 22, BothFound: 5, BaselineOnly: 2,
		FrameworkMissed: 26, NoPaths: 6,
	}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("%v apps = %d, want %d", cat, counts[cat], n)
		}
	}
	// Fig. 10: 285 ground-truth paths across 61 applications
	if manual != 285 {
		t.Fatalf("ground truth total = %d, want 285", manual)
	}
	if len(Runnable(apps)) != 27 {
		t.Fatalf("runnable = %d, want 27", len(Runnable(apps)))
	}
}

func TestAppsParse(t *testing.T) {
	for _, a := range All() {
		if _, err := a.Files(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if seen[a.Name] {
			t.Errorf("duplicate app name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestDetectionCalibration is the heart of experiment E1: running both
// analyzers over all 61 applications must reproduce the Fig. 10 totals —
// ~190 paths for Turnstile vs ~52 for the baseline, of 285 ground truth.
func TestDetectionCalibration(t *testing.T) {
	apps := All()
	totalT, totalB := 0, 0
	for _, a := range apps {
		files, err := a.Files()
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		tr := taint.Analyze(files, taint.DefaultOptions())
		br := baseline.Analyze(files)
		if len(tr.Paths) != a.ExpectTurnstile {
			t.Errorf("%s: turnstile paths = %d, want %d", a.Name, len(tr.Paths), a.ExpectTurnstile)
			for _, p := range tr.Paths {
				t.Logf("  T %s (%s) → %s (%s)", p.Source, p.SourceKind, p.Sink, p.SinkKind)
			}
		}
		if len(br.Paths) != a.ExpectBaseline {
			t.Errorf("%s: baseline paths = %d, want %d", a.Name, len(br.Paths), a.ExpectBaseline)
			for _, p := range br.Paths {
				t.Logf("  B %s (%s) → %s (%s)", p.Source, p.SourceKind, p.Sink, p.SinkKind)
			}
		}
		totalT += len(tr.Paths)
		totalB += len(br.Paths)
	}
	if totalT != 190 {
		t.Errorf("turnstile total = %d, want 190", totalT)
	}
	if totalB != 52 {
		t.Errorf("baseline total = %d, want 52", totalB)
	}
}

func TestRunnableAppsHaveProfiles(t *testing.T) {
	for _, a := range Runnable(All()) {
		if a.SourceName == "" || a.PolicyJSON == "" {
			t.Errorf("%s: missing runtime profile", a.Name)
		}
		if a.OffPathWeight <= 0 || a.OnPathWeight <= 0 {
			t.Errorf("%s: weights = %d/%d", a.Name, a.OffPathWeight, a.OnPathWeight)
		}
	}
	// the heavyweight apps of Fig. 12
	apps := All()
	nlp := ByName(apps, "nlp.js")
	if nlp == nil || nlp.Profile != "dict" || nlp.OffPathWeight < 500 {
		t.Fatal("nlp.js should carry the dictionary-scan profile")
	}
	modbus := ByName(apps, "modbus")
	if modbus == nil || modbus.Profile != "decode" || modbus.OnPathWeight < 100 {
		t.Fatal("modbus should carry heavy on-path decode work")
	}
}

func TestMessageGenerator(t *testing.T) {
	a := Runnable(All())[0]
	seen := map[string]bool{}
	hasEmployee, hasCustomer := false, false
	for i := 0; i < 20; i++ {
		m := a.Message(i)
		if m == "" {
			t.Fatal("empty message")
		}
		seen[m] = true
		if strings.Contains(m, "E") {
			hasEmployee = true
		}
		if strings.HasSuffix(m, ":") || strings.Contains(m, ":|") {
			hasCustomer = true
		}
	}
	if len(seen) < 10 {
		t.Fatalf("messages not varied: %d distinct", len(seen))
	}
	if !hasEmployee || !hasCustomer {
		t.Fatal("messages should exercise both label branches")
	}
}

func TestByName(t *testing.T) {
	apps := All()
	if ByName(apps, "watson") == nil {
		t.Fatal("watson missing")
	}
	if ByName(apps, "nonexistent") != nil {
		t.Fatal("phantom app")
	}
}

func TestCategoryString(t *testing.T) {
	for _, c := range []Category{TurnstileOnly, BothFound, BaselineOnly, FrameworkMissed, NoPaths} {
		if c.String() == "category?" {
			t.Errorf("missing name for %d", c)
		}
	}
}

func TestCorpusSize(t *testing.T) {
	// the corpus should be a substantial body of analyzable code
	total := 0
	for _, a := range All() {
		total += strings.Count(a.Source, "\n")
	}
	if total < 3000 {
		t.Fatalf("corpus is only %d lines", total)
	}
}
