// The seeded stratified generator: hundreds of applications composed from
// flow families observed in real-world JavaScript (dynamic property
// access, cross-module relays, implicit-flow ladders) plus protocol-heavy
// IoT scenarios (MQTT device-fleet fan-out, webhook fan-in, stateful
// accumulators), each a pure function of (stratum, seed, size) with
// line-tracked must-catch/must-allow ground truth in the attack.go style.
// The generated population is the repo's standing correctness oracle: the
// harness scores the tracker against the ground truth as a precision/
// recall table, and the metamorphic battery re-runs every app under
// slot≡map, flat≡mirrored-CNF and chaos differentials.
package corpus

import (
	"fmt"
	"strings"
)

// Stratum is one generated flow family.
type Stratum struct {
	Name string
	// Class is the detection-class narrative for the table: which flow
	// shape the stratum exercises.
	Class string
	// gen fills app.Files, policy spec, sources and ground truth.
	gen func(app *GenApp, r *rng)
}

// GenStrata returns the stratum taxonomy, deterministically ordered.
func GenStrata() []Stratum {
	return []Stratum{
		{"computed-key", "dynamic property flow (CNF deep collection)", genComputedKey},
		{"relay-chain", "cross-module relay (require chain)", genRelayChain},
		{"implicit-ladder", "implicit flow (branch ladder)", genImplicitLadder},
		{"mqtt-fanout", "device-fleet fan-out (mqtt publish)", genMqttFanout},
		{"webhook-fanin", "webhook fan-in (typed interprocedural)", genWebhookFanin},
		{"accumulator", "stateful cross-message accumulation", genAccumulator},
		{"units-mixed", "E1 unit mix (direct/typed/prototype)", genUnitsMixed},
	}
}

// GenStratumNames returns just the stratum names, in taxonomy order.
func GenStratumNames() []string {
	strata := GenStrata()
	names := make([]string, len(strata))
	for i, s := range strata {
		names[i] = s.Name
	}
	return names
}

// maxGenSize bounds the size knob so adversarial fuzz inputs cannot
// request pathological apps; every size is folded into [0, maxGenSize].
const maxGenSize = 12

// Generate builds the app at coordinates (stratum, seed, size). It is a
// pure function: equal coordinates yield byte-identical apps. Unknown
// strata are an error; size is folded into [0, maxGenSize].
func Generate(stratum string, seed uint64, size int) (*GenApp, error) {
	var s *Stratum
	for _, cand := range GenStrata() {
		if cand.Name == stratum {
			c := cand
			s = &c
			break
		}
	}
	if s == nil {
		return nil, fmt.Errorf("gen: unknown stratum %q (have %v)", stratum, GenStratumNames())
	}
	if size < 0 {
		size = -size
	}
	size %= maxGenSize + 1
	app := &GenApp{
		Name:    fmt.Sprintf("gen-%s-%08x", stratum, uint32(seed^seed>>32)),
		Stratum: stratum,
		Seed:    seed,
		Size:    size,
		Files:   map[string]string{},
		Event:   "data",
	}
	r := newRng(seed, stratum)
	s.gen(app, r)
	return app, nil
}

// GenCorpus generates n apps stratified round-robin across the taxonomy,
// with per-app seeds and sizes derived from the corpus seed. The corpus is
// a pure function of (n, seed); app index i always lands on stratum
// i mod |strata| so growing n never re-coordinates existing apps.
func GenCorpus(n int, seed uint64) ([]*GenApp, error) {
	strata := GenStrata()
	apps := make([]*GenApp, 0, n)
	for i := 0; i < n; i++ {
		s := strata[i%len(strata)]
		appSeed := mix64(seed ^ uint64(i)*0xA24BAED4963EE407)
		app, err := Generate(s.Name, appSeed, int(appSeed>>56)%(maxGenSize+1))
		if err != nil {
			return nil, err
		}
		// index-qualified name: derived seeds can collide in the low hex
		// digits; the index keeps corpus names unique and sortable
		app.Name = fmt.Sprintf("g%04d-%s", i, s.Name)
		s.gen(resetApp(app), newRng(appSeed, s.Name))
		apps = append(apps, app)
	}
	return apps, nil
}

// resetApp clears the generated payload fields so a generator can re-run
// under a renamed app (names are embedded in sources and site prefixes).
func resetApp(app *GenApp) *GenApp {
	app.Files = map[string]string{}
	app.Sources = nil
	app.MustCatch = nil
	app.MustAllow = nil
	app.Messages = 0
	return app
}

// finishPolicy renders both policy variants from the stratum's spec.
func finishPolicy(app *GenApp, spec *genPolicySpec) {
	app.Policy = spec.render(false)
	app.MirrorPolicy = spec.render(true)
}

// ---------------------------------------------------------------------------
// computed-key: the secret is stashed under computed property keys on
// otherwise clean objects, which are then shipped whole. Only the CNF-mode
// deep property collection reaches the smuggled labels; decoy objects
// stash public constants under equally dynamic keys and must stay clean.

func genComputedKey(app *GenApp, r *rng) {
	id := ident(app.Name)
	flows := 1 + app.Size%4
	decoys := 1 + r.intn(3)
	secret := r.token(8 + r.intn(8))
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.addf(`const secret = %q;`, secret)
	s.add(`const out = net.connect(9000);`)
	s.add(`const status = net.connect(9001);`)
	for i := 0; i < flows; i++ {
		s.addf(`const pkg%d_%s = { kind: "telemetry", idx: %d };`, i, id, i)
		s.addf(`const key%d_%s = "f" + %d;`, i, id, r.intn(90))
		s.addf(`pkg%d_%s[key%d_%s] = secret.charAt(%d);`, i, id, i, id, r.intn(len(secret)))
		app.MustCatch = append(app.MustCatch,
			sitePrefix(app.Name, s.addf(`out.write(pkg%d_%s);`, i, id)))
	}
	for j := 0; j < decoys; j++ {
		s.addf(`const clean%d_%s = { kind: "status" };`, j, id)
		s.addf(`const ckey%d_%s = "c" + %d;`, j, id, r.intn(90))
		s.addf(`clean%d_%s[ckey%d_%s] = "ok-%d";`, j, id, j, id, j)
		app.MustAllow = append(app.MustAllow,
			sitePrefix(app.Name, s.addf(`out.write(clean%d_%s);`, j, id)))
	}
	app.MustAllow = append(app.MustAllow,
		sitePrefix(app.Name, s.add(`status.write("computed-key done");`)))
	app.Files[app.EntryFile()] = s.String()
	finishPolicy(app, &genPolicySpec{
		inject:    map[string]string{"secret": "Secret", "out": "Public", "status": "Public"},
		cnfEnable: true,
	})
}

// ---------------------------------------------------------------------------
// relay-chain: the secret crosses module boundaries through a require
// chain — entry → lib0 → … → libK — and is only written in the last
// module, far from where it was labelled. The site prefix therefore names
// the lib file, proving cross-module label propagation.

func genRelayChain(app *GenApp, r *rng) {
	depth := 2 + app.Size%3
	secret := r.token(6 + r.intn(10))
	libName := func(k int) string { return fmt.Sprintf("%s-lib%d", app.Name, k) }

	var entry srcBuilder
	entry.add(`const net = require('net');`)
	entry.addf(`const chain = require('./%s');`, libName(0))
	entry.addf(`const secret = %q;`, secret)
	entry.add(`const status = net.connect(9001);`)
	entry.add(`chain.relay(secret);`)
	entry.add(`chain.relay(secret + "/again");`)
	app.MustAllow = append(app.MustAllow,
		sitePrefix(app.Name, entry.add(`status.write("relay deployed");`)))
	app.Files[app.EntryFile()] = entry.String()

	for k := 0; k < depth; k++ {
		var lib srcBuilder
		if k < depth-1 {
			lib.addf(`const next = require('./%s');`, libName(k+1))
			lib.addf(`function relay(v) { return next.relay(v + "|hop%d"); }`, k)
			lib.add(`module.exports = { relay: relay };`)
		} else {
			lib.add(`const net = require('net');`)
			lib.add(`const out = net.connect(9000);`)
			lib.add(`const status = net.connect(9002);`)
			catch := lib.add(`function relay(v) { out.write(v); return v.length; }`)
			allow := lib.add(`function announce() { status.write("chain ready"); }`)
			lib.add(`announce();`)
			lib.add(`module.exports = { relay: relay };`)
			app.MustCatch = append(app.MustCatch, sitePrefix(libName(k), catch))
			app.MustAllow = append(app.MustAllow, sitePrefix(libName(k), allow))
		}
		app.Files[libName(k)+".js"] = lib.String()
	}
	finishPolicy(app, &genPolicySpec{
		inject: map[string]string{"secret": "Secret", "out": "Public", "status": "Public"},
	})
}

// ---------------------------------------------------------------------------
// implicit-ladder: the classic control-flow channel, scaled — the secret
// is rebuilt from branch decisions through a ladder of nested conditionals
// (no assignment ever touches the secret value), then shipped. Only pc
// tracking connects the accumulated string to the secret.

func genImplicitLadder(app *GenApp, r *rng) {
	ladders := 1 + app.Size%3
	secret := r.token(5 + r.intn(8))
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.addf(`const secret = %q;`, secret)
	s.add(`const out = net.connect(9000);`)
	s.add(`const status = net.connect(9001);`)
	for l := 0; l < ladders; l++ {
		mod := 2 + r.intn(3)
		s.addf(`let acc%d = "";`, l)
		s.add(`for (let i = 0; i < secret.length; i++) {`)
		s.add(`  const c = secret.charCodeAt(i);`)
		s.addf(`  if (c %% %d === 0) { if (c %% 2 === 0) { acc%d = acc%d + "a"; } else { acc%d = acc%d + "b"; } } else { acc%d = acc%d + "z"; }`,
			mod, l, l, l, l, l, l)
		s.add(`}`)
		app.MustCatch = append(app.MustCatch,
			sitePrefix(app.Name, s.addf(`out.write(acc%d);`, l)))
	}
	app.MustAllow = append(app.MustAllow,
		sitePrefix(app.Name, s.add(`status.write("ladder idle");`)))
	app.Files[app.EntryFile()] = s.String()
	finishPolicy(app, &genPolicySpec{
		inject: map[string]string{"secret": "Secret", "out": "Public", "status": "Public"},
	})
}

// ---------------------------------------------------------------------------
// mqtt-fanout: a device fleet — every broker frame is re-published to
// per-device command topics (each publish a labelled flow), while the
// constant heartbeat publish must stay clean. Exercises handler-resident
// flows: the must-catch sites only fire once messages are pumped.

func genMqttFanout(app *GenApp, r *rng) {
	id := ident(app.Name)
	devices := 2 + app.Size%4
	var s srcBuilder
	s.add(`const mqtt = require('mqtt');`)
	s.addf(`const hub = mqtt.connect("fleet-%s");`, app.Name)
	s.addf(`hub.on("message", frame => { route_%s(frame); });`, id)
	s.addf(`function route_%s(frame) {`, id)
	for d := 0; d < devices; d++ {
		app.MustCatch = append(app.MustCatch,
			sitePrefix(app.Name, s.addf(`  hub.publish("dev/%d/cmd", frame + "#%d");`, d, d)))
	}
	app.MustAllow = append(app.MustAllow,
		sitePrefix(app.Name, s.add(`  hub.publish("fleet/health", "hb");`)))
	s.add(`}`)
	app.Files[app.EntryFile()] = s.String()
	app.Sources = []string{"mqtt:fleet-" + app.Name}
	app.Event = "message"
	app.Messages = 3 + r.intn(4)
	finishPolicy(app, &genPolicySpec{
		inject: map[string]string{"frame": "Secret", "hub": "Public"},
	})
}

// ---------------------------------------------------------------------------
// webhook-fanin: several ingress sockets funnel into one shared sink
// through per-hook handler functions — the runtime mirror of the paper's
// typed-interprocedural flows (the sink reaches the handler as data).

func genWebhookFanin(app *GenApp, r *rng) {
	id := ident(app.Name)
	hooks := 2 + app.Size%4
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.add(`const out = net.connect(9000);`)
	s.add(`const status = net.connect(9001);`)
	for h := 0; h < hooks; h++ {
		app.MustCatch = append(app.MustCatch,
			sitePrefix(app.Name, s.addf(`function handle%d_%s(sink, frame) { sink.write("h%d:" + frame); }`, h, id, h)))
		s.addf(`const hook%d_%s = net.connect({ host: "hook%d-%s", port: 8080 });`, h, id, h, app.Name)
		s.addf(`hook%d_%s.on("data", frame => handle%d_%s(out, frame));`, h, id, h, id)
		app.Sources = append(app.Sources, fmt.Sprintf("net.socket:hook%d-%s:8080", h, app.Name))
	}
	app.MustAllow = append(app.MustAllow,
		sitePrefix(app.Name, s.add(`status.write("fanin ready");`)))
	app.Files[app.EntryFile()] = s.String()
	app.Messages = hooks + 1 + r.intn(4)
	finishPolicy(app, &genPolicySpec{
		inject: map[string]string{"frame": "Secret", "out": "Public", "status": "Public"},
	})
}

// ---------------------------------------------------------------------------
// accumulator: stateful cross-message flows — frames accumulate in
// module-level state and are flushed to the sink every k-th message, so
// the violation carries labels from several earlier arrivals. The
// per-message constant tick must stay clean.

func genAccumulator(app *GenApp, r *rng) {
	id := ident(app.Name)
	k := 2 + app.Size%3
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.addf(`const feed = net.connect({ host: "acc-%s", port: 7000 });`, app.Name)
	s.add(`const out = net.connect(9000);`)
	s.add(`const status = net.connect(9001);`)
	s.addf(`let state_%s = "";`, id)
	s.addf(`let n_%s = 0;`, id)
	s.addf(`feed.on("data", frame => { ingest_%s(frame); });`, id)
	s.addf(`function ingest_%s(frame) {`, id)
	s.addf(`  state_%s = state_%s + "|" + frame;`, id, id)
	s.addf(`  n_%s = n_%s + 1;`, id, id)
	s.addf(`  if (n_%s %% %d === 0) {`, id, k)
	app.MustCatch = append(app.MustCatch,
		sitePrefix(app.Name, s.addf(`    out.write(state_%s);`, id)))
	s.addf(`    state_%s = "";`, id)
	s.add(`  }`)
	app.MustAllow = append(app.MustAllow,
		sitePrefix(app.Name, s.add(`  status.write("tick");`)))
	s.add(`}`)
	app.Files[app.EntryFile()] = s.String()
	app.Sources = []string{fmt.Sprintf("net.socket:acc-%s:7000", app.Name)}
	app.Messages = k + 1 + r.intn(2*k)
	finishPolicy(app, &genPolicySpec{
		inject: map[string]string{"frame": "Secret", "out": "Public", "status": "Public"},
	})
}

// ---------------------------------------------------------------------------
// units-mixed: line-tracked runtime variants of gen.go's E1 unit shapes —
// a labelled typed-interprocedural main flow (must-catch) composed with
// direct-copy and prototype-chain units whose data is never labelled
// (their executed sink writes are must-allow precision controls), plus
// pure-compute padding.

func genUnitsMixed(app *GenApp, r *rng) {
	id := ident(app.Name)
	direct := 1 + app.Size%3
	protos := 1 + r.intn(2)
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.add(`const fs = require('fs');`)
	s.addf(`const feed = net.connect({ host: "feed-%s", port: 9000 });`, app.Name)
	s.add(`const out = net.connect(9000);`)
	app.MustCatch = append(app.MustCatch,
		sitePrefix(app.Name, s.addf(`function deliver_%s(sink, v) { sink.write(v.trim()); }`, id)))
	s.addf(`feed.on("data", frame => deliver_%s(out, frame));`, id)
	app.Sources = append(app.Sources, fmt.Sprintf("net.socket:feed-%s:9000", app.Name))
	for i := 0; i < direct; i++ {
		s.addf(`const rd%d_%s = fs.createReadStream("/in/%s/u%d");`, i, id, app.Name, i)
		s.addf(`const wr%d_%s = fs.createWriteStream("/copy/%s/u%d");`, i, id, app.Name, i)
		app.MustAllow = append(app.MustAllow,
			sitePrefix(app.Name, s.addf(`rd%d_%s.on("data", c => { wr%d_%s.write(c.toUpperCase()); });`, i, id, i, id)))
		app.Sources = append(app.Sources, fmt.Sprintf("fs.readStream:/in/%s/u%d", app.Name, i))
	}
	for p := 0; p < protos; p++ {
		s.addf(`function Rec%d_%s() { this.dest = fs.createWriteStream("/rec/%s/u%d"); }`, p, id, app.Name, p)
		app.MustAllow = append(app.MustAllow,
			sitePrefix(app.Name, s.addf(`Rec%d_%s.prototype.save = function(d) { this.dest.write(d); };`, p, id)))
		s.addf(`const rec%d_%s = new Rec%d_%s();`, p, id, p, id)
		s.addf(`const cam%d_%s = fs.createReadStream("/cam/%s/u%d");`, p, id, app.Name, p)
		s.addf(`cam%d_%s.on("data", d => rec%d_%s.save(d));`, p, id, p, id)
		app.Sources = append(app.Sources, fmt.Sprintf("fs.readStream:/cam/%s/u%d", app.Name, p))
	}
	s.addf(`function pad_%s(x) { let o = x * 2 + 1; for (let i = 0; i < 3; i++) { o = o + i * i; } return o; }`, id)
	s.addf(`const cal_%s = pad_%s(%d);`, id, id, r.intn(40))
	app.Files[app.EntryFile()] = s.String()
	app.Messages = len(app.Sources) + 2 + r.intn(4)
	finishPolicy(app, &genPolicySpec{
		inject: map[string]string{"frame": "Secret", "out": "Public"},
	})
}

// GenByName finds a generated app in a corpus slice.
func GenByName(apps []*GenApp, name string) *GenApp {
	for _, a := range apps {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// genLines counts total generated source lines (used by shape tests).
func genLines(apps []*GenApp) int {
	total := 0
	for _, a := range apps {
		for _, src := range a.Files {
			total += strings.Count(src, "\n")
		}
	}
	return total
}
