package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestGenerateIsPureFunction: the same (stratum, seed, size) coordinates
// must reproduce byte-identical sources, policies and ground truth, and
// nearby coordinates must actually differ — a generator that collapses to
// one app per stratum would pass every differential relation vacuously.
func TestGenerateIsPureFunction(t *testing.T) {
	for _, stratum := range GenStratumNames() {
		a, err := Generate(stratum, 0xBEEF, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(stratum, 0xBEEF, 5)
		if err != nil {
			t.Fatal(err)
		}
		if renderGenApp(a) != renderGenApp(b) {
			t.Fatalf("%s: regeneration at identical coordinates diverged", stratum)
		}
		c, err := Generate(stratum, 0xBEF0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if renderGenApp(a) == renderGenApp(c) {
			t.Errorf("%s: seed change produced an identical app", stratum)
		}
	}
}

// TestGenerateConsistencySweep: every reachable coordinate in a broad
// sweep satisfies the ground-truth contract — disjoint catch/allow sets,
// well-formed prefixes pointing at lines that exist.
func TestGenerateConsistencySweep(t *testing.T) {
	for _, stratum := range GenStratumNames() {
		for seed := uint64(0); seed < 20; seed++ {
			for size := 0; size <= maxGenSize; size += 3 {
				app, err := Generate(stratum, seed*0x9E3779B9+1, size)
				if err != nil {
					t.Fatal(err)
				}
				if err := app.CheckConsistency(); err != nil {
					t.Errorf("%s seed %d size %d: %v", stratum, seed, size, err)
				}
			}
		}
	}
}

func TestGenerateUnknownStratum(t *testing.T) {
	if _, err := Generate("no-such-stratum", 1, 1); err == nil {
		t.Fatal("unknown stratum accepted")
	}
}

// TestGenCorpusStability: the corpus is a pure function of (n, seed), a
// prefix of a larger corpus regenerates the same leading apps, and names
// are unique.
func TestGenCorpusStability(t *testing.T) {
	a, err := GenCorpus(40, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenCorpus(40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("corpus sizes %d/%d, want 40", len(a), len(b))
	}
	seen := map[string]bool{}
	for i := range a {
		if renderGenApp(a[i]) != renderGenApp(b[i]) {
			t.Fatalf("app %d not reproducible", i)
		}
		if seen[a[i].Name] {
			t.Fatalf("duplicate generated name %q", a[i].Name)
		}
		seen[a[i].Name] = true
	}
	wide, err := GenCorpus(60, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if renderGenApp(wide[i]) != renderGenApp(a[i]) {
			t.Fatalf("app %d changes when the corpus grows", i)
		}
	}
	// round-robin composition covers every stratum
	strata := map[string]int{}
	for _, app := range a {
		strata[app.Stratum]++
	}
	if len(strata) != len(GenStratumNames()) {
		t.Fatalf("corpus covers %d strata, want %d", len(strata), len(GenStratumNames()))
	}
}

// renderGenApp serializes everything observable about a generated app into
// one deterministic text blob — the comparison and golden format.
func renderGenApp(g *GenApp) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name: %s\nstratum: %s\nseed: %#x\nsize: %d\n", g.Name, g.Stratum, g.Seed, g.Size)
	fmt.Fprintf(&b, "sources: %s\nevent: %s\nmessages: %d\n", strings.Join(g.Sources, ", "), g.Event, g.Messages)
	fmt.Fprintf(&b, "must-catch: %s\n", strings.Join(g.MustCatch, ", "))
	fmt.Fprintf(&b, "must-allow: %s\n", strings.Join(g.MustAllow, ", "))
	fmt.Fprintf(&b, "-- policy --\n%s\n", g.Policy)
	fmt.Fprintf(&b, "-- mirror policy --\n%s\n", g.MirrorPolicy)
	files := make([]string, 0, len(g.Files))
	for name := range g.Files {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		fmt.Fprintf(&b, "-- %s --\n%s", name, g.Files[name])
	}
	return b.String()
}

// TestGenGolden pins one generated app per stratum — source, policy and
// ground truth — to committed golden files, so any drift in the generator
// is a reviewed diff, not a silent recalibration of every seed.
// Regenerate with TURNSTILE_UPDATE_GOLDEN=1 go test ./internal/corpus -run GenGolden
func TestGenGolden(t *testing.T) {
	for _, stratum := range GenStratumNames() {
		app, err := Generate(stratum, 1, 6)
		if err != nil {
			t.Fatal(err)
		}
		got := renderGenApp(app)
		golden := filepath.Join("testdata", "gen_"+stratum+".golden.txt")
		if os.Getenv("TURNSTILE_UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("golden updated: %s", golden)
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("golden file missing (regenerate with TURNSTILE_UPDATE_GOLDEN=1): %v", err)
		}
		if string(want) != got {
			t.Errorf("%s drifted from golden:\n-- got --\n%s\n-- want --\n%s", stratum, got, want)
		}
	}
}
