// The attack corpus: adversarial applications written to defeat the
// tracker, after the evasion catalogue of the empirical JavaScript
// information-flow study (PAPERS.md) — control-flow channel encoding,
// implicit-flow laundering through Node-RED-style wire chains, declassifier
// and endorsement abuse, and dynamic-property label smuggling. Each app
// carries ground truth: the violation sites that MUST still be reported
// (MustCatch) and the sanctioned flows that must stay clean (MustAllow).
// The harness runs them with exhaustive instrumentation, implicit flows and
// the tracker in audit mode, then scores precision/recall against the
// ground truth; scripts/verify.sh gates on zero missed must-catch flows.
package corpus

import (
	"fmt"
)

// AttackApp is one adversarial application with built-in ground truth.
type AttackApp struct {
	Name string
	// Vector is a one-line description of the laundering technique.
	Vector string
	// Source is the application code (one file, Name+".js").
	Source string
	// Policy is the IFC policy JSON the app runs under (CNF extension
	// blocks included where the attack targets them).
	Policy string
	// MustCatch lists violation-site prefixes that must each match at
	// least one recorded violation ("name.js:LINE:" for sink sites,
	// "declassify:NAME"/"endorse:NAME" for CNF-rule refusals).
	MustCatch []string
	// MustAllow lists site prefixes that must match no violation at all —
	// sanctioned flows an over-tainting tracker would flag.
	MustAllow []string
}

// attackPolicy assembles the corpus policy: secrets labelled Secret,
// sink sockets labelled Public, and the single rule Public -> Secret so a
// Secret→sink flow is comparable-but-forbidden under the default
// comparable mode. cnf, when non-empty, is the JSON fragment declaring the
// CNF extension blocks the app attacks.
func attackPolicy(cnf string) string {
	base := `{
  "labellers": {
    "AsSecret": "v => \"Secret\"",
    "AsSink": "v => \"Public\""
  },
  "rules": [ "Public -> Secret" ],
  "injections": [
    { "object": "secret", "labeller": "AsSecret" },
    { "object": "out", "labeller": "AsSink" },
    { "object": "ch", "labeller": "AsSink" },
    { "object": "status", "labeller": "AsSink" }
  ]`
	if cnf != "" {
		return base + ",\n" + cnf + "\n}"
	}
	return base + "\n}"
}

// cnfAudit declares the declassifier/endorsement pair the abuse apps
// target: "release" discharges Secret but only in decision contexts
// endorsed by "audit".
const cnfAudit = `  "declassifiers": [ { "name": "release", "removes": "Secret", "requires": "Audited" } ],
  "endorsements": [ { "name": "audit", "adds": "Audited" } ]`

// cnfExchange declares the licence-exchange rule the forge app targets:
// data carrying the Paid fact may add Licensed as an alternative to Secret
// clauses.
const cnfExchange = `  "exchanges": [ { "guard": "Paid", "from": "Secret", "adds": ["Licensed"] } ],
  "endorsements": [ { "name": "pay", "adds": "Paid" } ]`

// cnfEnable is a minimal CNF block whose only purpose is switching the
// tracker onto the clause-aware paths (deep property collection).
const cnfEnable = `  "endorsements": [ { "name": "unused", "adds": "Unused" } ]`

// evilRouter is Snippet 1's sender: the secret is never written anywhere —
// it steers WHICH of 64 channels receives a constant ping. Every executed
// channel write runs under a secret pc and must be caught as an implicit
// flow; the status heartbeat must stay clean.
func evilRouter() *AttackApp {
	const secret = "TOPSECRET-PLAN"
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.add(`const secret = "` + secret + `";`)
	s.add(`const status = net.connect(9000);`)
	s.add(`const chans = [];`)
	s.add(`for (let i = 0; i < 64; i++) { const ch = net.connect(9100 + i); chans.push(ch); }`)
	s.add(`for (let i = 0; i < secret.length; i++) {`)
	s.add(`  const code = secret.charCodeAt(i) % 64;`)
	writeLine := make([]int, 64)
	for k := 0; k < 64; k++ {
		writeLine[k] = s.add(fmt.Sprintf(`  if (code === %d) { chans[%d].write("p"); }`, k, k))
	}
	s.add(`}`)
	allow := s.add(`status.write("router online");`)
	app := &AttackApp{
		Name:   "evil-router",
		Vector: "64-channel control-flow encoding",
		Source: s.String(),
		Policy: attackPolicy(""),
	}
	hit := make(map[int]bool)
	for i := 0; i < len(secret); i++ {
		hit[int(secret[i])%64] = true
	}
	for k := 0; k < 64; k++ {
		if hit[k] {
			app.MustCatch = append(app.MustCatch, sitePrefix(app.Name, writeLine[k]))
		}
	}
	app.MustAllow = []string{sitePrefix(app.Name, allow)}
	return app
}

// evilReader is Snippet 1's receiver: the secret is rebuilt bit by bit
// from branch decisions into a string of '0'/'1' characters that never
// touched the secret value directly — only pc labels connect them.
func evilReader() *AttackApp {
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.add(`const secret = "EXFIL-ME";`)
	s.add(`const out = net.connect(9000);`)
	s.add(`const status = net.connect(9001);`)
	s.add(`let acc = "";`)
	s.add(`for (let i = 0; i < secret.length; i++) {`)
	s.add(`  const c = secret.charCodeAt(i);`)
	s.add(`  if (c % 2 === 1) { acc = acc + "1"; } else { acc = acc + "0"; }`)
	s.add(`}`)
	catch := s.add(`out.write(acc);`)
	allow := s.add(`status.write("reader idle");`)
	return &AttackApp{
		Name:      "evil-reader",
		Vector:    "bit reassembly from branch decisions",
		Source:    s.String(),
		Policy:    attackPolicy(""),
		MustCatch: []string{sitePrefix("evil-reader", catch)},
		MustAllow: []string{sitePrefix("evil-reader", allow)},
	}
}

// wireLaunder copies the secret through a chain of Node-RED-style wire
// nodes, rebuilding it character by character into fresh objects so no
// single assignment looks like a direct flow.
func wireLaunder() *AttackApp {
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.add(`const secret = "PATIENT-RECORD";`)
	s.add(`const out = net.connect(9000);`)
	s.add(`const status = net.connect(9001);`)
	s.add(`function node1(msg) { return { payload: msg.payload, topic: "wire" }; }`)
	s.add(`function node2(msg) { const fresh = { topic: msg.topic }; fresh.payload = msg.payload; return fresh; }`)
	s.add(`function node3(msg) {`)
	s.add(`  let r = "";`)
	s.add(`  for (let i = 0; i < msg.payload.length; i++) { r = r + msg.payload.charAt(i); }`)
	s.add(`  return { payload: r, topic: msg.topic };`)
	s.add(`}`)
	s.add(`const m = node3(node2(node1({ payload: secret, topic: "wire" })));`)
	catch := s.add(`out.write(m.payload);`)
	allow := s.add(`status.write("wire clean");`)
	return &AttackApp{
		Name:      "wire-launder",
		Vector:    "laundering through wire-node chain",
		Source:    s.String(),
		Policy:    attackPolicy(""),
		MustCatch: []string{sitePrefix("wire-launder", catch)},
		MustAllow: []string{sitePrefix("wire-launder", allow)},
	}
}

// declassifyAbuse calls the sanctioned declassifier from inside a
// secret-conditioned branch: robust declassification must refuse (the
// branch taken reveals the secret, so low-integrity control is steering
// the release) and the still-labelled value must be caught at the sink.
// The same declassifier used at top level is sanctioned and must pass.
func declassifyAbuse() *AttackApp {
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.add(`const secret = "TOPSECRET";`)
	s.add(`const out = net.connect(9000);`)
	s.add(`const rel = declassify("" + secret, "release");`)
	allowRel := s.add(`out.write(rel);`)
	s.add(`const tag = secret.charAt(0);`)
	s.add(`if (tag === "T") {`)
	s.add(`  const stolen = declassify("" + secret, "release");`)
	catch := s.add(`  out.write(stolen);`)
	s.add(`}`)
	allowDone := s.add(`out.write("audit complete");`)
	return &AttackApp{
		Name:   "declassify-abuse",
		Vector: "declassifier under secret control",
		Source: s.String(),
		// requires is omitted on purpose: a declassifier with no integrity
		// requirement must still refuse under ANY secret pc
		Policy: attackPolicy(`  "declassifiers": [ { "name": "release", "removes": "Secret" } ]`),
		MustCatch: []string{
			"declassify:release",
			sitePrefix("declassify-abuse", catch),
		},
		MustAllow: []string{
			sitePrefix("declassify-abuse", allowRel),
			sitePrefix("declassify-abuse", allowDone),
		},
	}
}

// declassifyLoop steers declassification bit by bit: each loop iteration
// conditionally declassifies one character of the secret, so the set of
// released characters IS the secret. Every in-branch declassification must
// be refused and the accumulated string caught at the sink.
func declassifyLoop() *AttackApp {
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.add(`const secret = "SPYCODE";`)
	s.add(`const out = net.connect(9000);`)
	s.add(`const status = net.connect(9001);`)
	s.add(`let leaked = "";`)
	s.add(`for (let i = 0; i < secret.length; i++) {`)
	s.add(`  const bit = secret.charCodeAt(i) % 2;`)
	s.add(`  if (bit === 1) {`)
	s.add(`    leaked = leaked + declassify("" + secret.charAt(i), "release");`)
	s.add(`  }`)
	s.add(`}`)
	catch := s.add(`out.write(leaked);`)
	allow := s.add(`status.write("scan finished");`)
	return &AttackApp{
		Name:   "declassify-loop",
		Vector: "bit-steered declassification",
		Source: s.String(),
		Policy: attackPolicy(`  "declassifiers": [ { "name": "release", "removes": "Secret" } ]`),
		MustCatch: []string{
			"declassify:release",
			sitePrefix("declassify-loop", catch),
		},
		MustAllow: []string{sitePrefix("declassify-loop", allow)},
	}
}

// endorseAbuse mints the Audited fact from inside a secret branch (opaque
// endorsement — which inputs get endorsed would itself leak) and then uses
// it to unlock the declassifier. Both refusals must fire and the leak must
// be caught at the sink.
func endorseAbuse() *AttackApp {
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.add(`const secret = "LAUNCHKEY";`)
	s.add(`const out = net.connect(9000);`)
	s.add(`const flag = secret.length > 5;`)
	s.add(`if (flag) {`)
	s.add(`  const evil = endorse(true, "audit");`)
	s.add(`  const oops = declassify("" + secret, "release");`)
	catch := s.add(`  out.write(oops);`)
	s.add(`}`)
	allow := s.add(`out.write("endorse audit done");`)
	return &AttackApp{
		Name:   "endorse-abuse",
		Vector: "opaque endorsement laundering",
		Source: s.String(),
		Policy: attackPolicy(cnfAudit),
		MustCatch: []string{
			"endorse:audit",
			"declassify:release",
			sitePrefix("endorse-abuse", catch),
		},
		MustAllow: []string{sitePrefix("endorse-abuse", allow)},
	}
}

// endorseGate is the sanctioned counterpart of endorseAbuse: the
// secret-derived decision is endorsed transparently at top level, so the
// in-branch declassification is robust and must NOT be refused. The write
// inside the scope is still a residual implicit flow (writing at all
// reveals the branch) and remains a must-catch.
func endorseGate() *AttackApp {
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.add(`const secret = "LAUNCHKEY";`)
	s.add(`const out = net.connect(9000);`)
	s.add(`const approved = endorse(secret.length > 3, "audit");`)
	s.add(`if (approved) {`)
	s.add(`  const ok = declassify("" + secret, "release");`)
	catch := s.add(`  out.write(ok);`)
	s.add(`}`)
	allow := s.add(`out.write("gate done");`)
	return &AttackApp{
		Name:   "endorse-gate",
		Vector: "endorsed decision unlocks declassify",
		Source: s.String(),
		Policy: attackPolicy(cnfAudit),
		MustCatch: []string{
			sitePrefix("endorse-gate", catch),
		},
		MustAllow: []string{
			"declassify:release",
			"endorse:audit",
			sitePrefix("endorse-gate", allow),
		},
	}
}

// exchangeForge targets the licence-exchange rule: a bare secret write has
// no Paid fact and must be caught; bundling the secret with an endorsed
// payment token satisfies the exchange guard, widens the Secret clause
// with the Licensed alternative, and must pass.
func exchangeForge() *AttackApp {
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.add(`const secret = "MODELWEIGHTS";`)
	s.add(`const out = net.connect(9000);`)
	catch := s.add(`out.write("" + secret);`)
	s.add(`const token = endorse({ receipt: 4242 }, "pay");`)
	s.add(`const bundle = [token, "" + secret];`)
	allowPaid := s.add(`out.write(bundle);`)
	allowDone := s.add(`out.write("forge done");`)
	return &AttackApp{
		Name:      "exchange-forge",
		Vector:    "exchange without integrity guard",
		Source:    s.String(),
		Policy:    attackPolicy(cnfExchange),
		MustCatch: []string{sitePrefix("exchange-forge", catch)},
		MustAllow: []string{
			sitePrefix("exchange-forge", allowPaid),
			sitePrefix("exchange-forge", allowDone),
		},
	}
}

// dynamicPropSmuggle stashes the secret under a computed property key on
// an otherwise clean object, then ships the object. Only deep property
// collection (the CNF-mode tracker) reaches the smuggled label.
func dynamicPropSmuggle() *AttackApp {
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.add(`const secret = "BIOMETRICS";`)
	s.add(`const out = net.connect(9000);`)
	s.add(`const pkg = { kind: "status", uptime: 123 };`)
	s.add(`const key = "st" + "ash";`)
	s.add(`pkg[key] = secret;`)
	catch := s.add(`out.write(pkg);`)
	allow := s.add(`out.write("heartbeat");`)
	return &AttackApp{
		Name:      "dynamic-prop-smuggle",
		Vector:    "computed-key property smuggling",
		Source:    s.String(),
		Policy:    attackPolicy(cnfEnable),
		MustCatch: []string{sitePrefix("dynamic-prop-smuggle", catch)},
		MustAllow: []string{sitePrefix("dynamic-prop-smuggle", allow)},
	}
}

// pcClearProbe leaks through the dynamic extent of the pc: the sink write
// lives in a helper defined at top level but CALLED from a secret branch,
// so a static view of its body looks clean — only the dynamic pc stack
// connects the write to the secret.
func pcClearProbe() *AttackApp {
	var s srcBuilder
	s.add(`const net = require('net');`)
	s.add(`const secret = "GEOFENCE";`)
	s.add(`const out = net.connect(9000);`)
	s.add(`const status = net.connect(9001);`)
	catch := s.add(`function beacon() { out.write("ping"); }`)
	s.add(`if (secret.charAt(0) === "G") { beacon(); }`)
	allow := s.add(`status.write("probe done");`)
	return &AttackApp{
		Name:      "pc-clear-probe",
		Vector:    "helper called under secret pc",
		Source:    s.String(),
		Policy:    attackPolicy(""),
		MustCatch: []string{sitePrefix("pc-clear-probe", catch)},
		MustAllow: []string{sitePrefix("pc-clear-probe", allow)},
	}
}

// AttackApps generates the attack corpus, deterministically ordered.
func AttackApps() []*AttackApp {
	return []*AttackApp{
		evilRouter(),
		evilReader(),
		wireLaunder(),
		declassifyAbuse(),
		declassifyLoop(),
		endorseAbuse(),
		endorseGate(),
		exchangeForge(),
		dynamicPropSmuggle(),
		pcClearProbe(),
	}
}

// AttackByName finds an attack app.
func AttackByName(apps []*AttackApp, name string) *AttackApp {
	for _, a := range apps {
		if a.Name == name {
			return a
		}
	}
	return nil
}
