// Package corpus generates the 61 third-party Node-RED applications used
// in the evaluation (§6). The paper's corpus is 61 real GitHub
// repositories; this reproduction substitutes synthetic applications whose
// dataflow structure spans the same qualitative categories the paper
// reports, with per-app ground truth built in:
//
//   - 22 apps whose privacy-sensitive flows pass I/O objects through user
//     function boundaries: found by Turnstile's type-sensitive analysis,
//     missed by the baseline.
//   - 5 apps with flows both tools find (3 where Turnstile finds more, 1
//     where the baseline finds more, 1 where they tie).
//   - 2 apps whose flows go through the JavaScript prototype chain: found
//     only by the baseline.
//   - 26 apps whose flows go through framework-injected APIs
//     (RED.httpNode): in the manual ground truth, found by neither tool.
//   - 6 apps with no privacy-sensitive flows at all.
//
// Totals mirror Fig. 10: 285 ground-truth paths, ≈190 found by Turnstile,
// ≈52 by the baseline. The 27 apps where Turnstile finds at least one path
// are runnable (they drive Part 2, §6.2) and carry per-app workload
// profiles: the nlp.js analogue scans large token dictionaries per message,
// the modbus analogue decodes frames byte by byte, and so on.
package corpus

import (
	"fmt"
	"strings"

	"turnstile/internal/parser"
	"turnstile/internal/taint"
)

// Category classifies an app by which analyzer detects its flows.
type Category int

const (
	// TurnstileOnly apps have only type-sensitive interprocedural flows.
	TurnstileOnly Category = iota
	// BothFound apps mix directly-detectable flows with others.
	BothFound
	// BaselineOnly apps have only prototype-chain flows.
	BaselineOnly
	// FrameworkMissed apps have only RED.httpNode flows (neither finds).
	FrameworkMissed
	// NoPaths apps have no privacy-sensitive flows.
	NoPaths
)

func (c Category) String() string {
	switch c {
	case TurnstileOnly:
		return "turnstile-only"
	case BothFound:
		return "both-found"
	case BaselineOnly:
		return "baseline-only"
	case FrameworkMissed:
		return "framework-missed"
	case NoPaths:
		return "no-paths"
	}
	return "category?"
}

// App is one corpus application.
type App struct {
	Name     string
	Category Category
	// Source is the application code (one file).
	Source string
	// GroundTruth is the manually-established number of privacy-sensitive
	// code paths (the green line of Fig. 10).
	GroundTruth int
	// ExpectTurnstile / ExpectBaseline are the calibrated detection counts.
	ExpectTurnstile int
	ExpectBaseline  int

	// Runnable apps participate in Part 2 (§6.2).
	Runnable bool
	// SourceName is the interp source-emitter name the workload pump
	// feeds ("net.socket:cam-<name>:9000").
	SourceName string
	// Profile shapes the per-message workload:
	//   "light"  — mostly native work, a small instrumented loop
	//   "dict"   — dense instrumented dictionary scan (the nlp.js blowup)
	//   "decode" — heavy instrumented work on the sensitive frame (modbus)
	//   "api"    — medium instrumented helper work (amazon-echo etc.)
	Profile string
	// OffPathWeight is the per-message work on non-sensitive data
	// (dictionary scans etc.) — what exhaustive tracking pays for.
	OffPathWeight int
	// OnPathWeight is the per-message work on the sensitive frame itself.
	OnPathWeight int
	// PolicyJSON is the placeholder-label IFC policy of §6.2.
	PolicyJSON string
}

// Files parses the app into analyzer input.
func (a *App) Files() ([]taint.File, error) {
	prog, err := parser.Parse(a.Name+".js", a.Source)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", a.Name, err)
	}
	return []taint.File{{Name: a.Name + ".js", Prog: prog}}, nil
}

// Message builds the i-th workload message for a runnable app: a frame
// descriptor of the form "personN:IDorEmpty|...". Roughly half the frames
// contain an "employee" marker so value-dependent labelling exercises both
// branches.
func (a *App) Message(i int) string {
	var b strings.Builder
	persons := 1 + i%3
	for p := 0; p < persons; p++ {
		if p > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "person%d:", i*7+p)
		if (i+p)%2 == 0 {
			fmt.Fprintf(&b, "E%d", i%97)
		}
	}
	return b.String()
}

// placeholderPolicy is the systematically-generated IFC policy of §6.2:
// placeholder labels (Alpha/Beta) with no application-specific meaning,
// assigned value-dependently from the frame content.
const placeholderPolicy = `{
  "labellers": {
    "Msg": "v => v.indexOf(\"E\") >= 0 ? \"Alpha\" : \"Beta\""
  },
  "rules": [ "Alpha -> Beta", "Beta -> Gamma" ],
  "injections": [ { "object": "frame", "labeller": "Msg" } ]
}`

// turnstileOnlyCounts are the per-app path counts for the 22 apps whose
// flows only Turnstile detects (sum = 165).
var turnstileOnlyCounts = []int{13, 12, 11, 10, 10, 9, 9, 8, 8, 8, 7, 7, 6, 6, 6, 5, 5, 5, 4, 4, 4, 8}

// bothFoundSpecs are the 5 apps both tools detect: direct flows (both find)
// plus typed or prototype extras.
var bothFoundSpecs = []struct {
	name   string
	direct int
	typed  int
	proto  int
}{
	{"amazon-echo", 3, 5, 0},     // Turnstile 8, baseline 3
	{"dialogflow", 2, 4, 0},      // Turnstile 6, baseline 2
	{"watson", 3, 2, 0},          // Turnstile 5, baseline 3
	{"smart-dashboard", 2, 0, 3}, // Turnstile 2, baseline 5
	{"sensor-logger", 4, 0, 0},   // tie: 4 / 4
}

// baselineOnlySpecs are the 2 prototype-chain apps (§6.1's "two
// applications in which CodeQL outperformed Turnstile").
var baselineOnlySpecs = []struct {
	name  string
	proto int
}{
	{"legacy-gateway", 20},
	{"modbus-bridge", 15},
}

// turnstileOnlyNames gives the 22 apps IoT-flavoured names; the first two
// are the heavyweights highlighted in Fig. 12.
var turnstileOnlyNames = []string{
	"modbus", "nlp.js", "camera-archiver", "door-controller", "smart-meter",
	"thermostat-hub", "motion-relay", "irrigation", "air-quality", "parking-sensor",
	"fleet-tracker", "energy-monitor", "soil-probe", "warehouse-scanner", "badge-reader",
	"hvac-controller", "aquarium-monitor", "greenhouse", "weather-station", "doorbell-cam",
	"asset-tagger", "cold-chain",
}

// frameworkNames are the 26 apps with RED.httpNode-style flows; 5 carry 3
// ground-truth paths and 21 carry 2 (sum = 57).
var frameworkNames = []string{
	"dashboard-api", "face-gallery", "alert-webhooks", "audit-viewer", "remote-config", // 3 each
	"telemetry-api", "device-registry", "ota-updater", "rule-editor", "alarm-panel",
	"presence-api", "lock-admin", "sensor-export", "scene-manager", "geofence-api",
	"firmware-portal", "metrics-proxy", "camera-portal", "visitor-log", "pet-feeder",
	"leak-monitor", "power-strip", "blind-control", "co2-display", "garage-door", "mailbox-watch",
}

// noPathNames are the 6 apps with no privacy-sensitive flows.
var noPathNames = []string{
	"unit-converter", "cron-scheduler", "color-mixer", "math-blocks", "text-format", "json-tools",
}

// offPathWeights tunes per-message non-sensitive work for the runnable
// apps, keyed by name. nlp.js dominates (the dictionary-scanning blowup of
// §6.2); modbus has both heavy decode and heavy helpers.
var offPathWeights = map[string]int{
	"modbus": 2100, "nlp.js": 700,
	"amazon-echo": 360, "dialogflow": 380, "watson": 440,
}

// profiles keys the workload shape per app; everything else is "light".
var profiles = map[string]string{
	"nlp.js": "dict", "modbus": "decode",
	"amazon-echo": "api", "dialogflow": "api", "watson": "api",
}

// onPathWeights tunes per-message sensitive-path work.
var onPathWeights = map[string]int{
	"modbus": 450, "nlp.js": 12,
	"amazon-echo": 30, "dialogflow": 24, "watson": 36,
}

// All generates the full 61-app corpus, deterministically.
func All() []*App {
	var apps []*App
	unit := 0
	for i, name := range turnstileOnlyNames {
		n := turnstileOnlyCounts[i]
		app := &App{
			Name:            name,
			Category:        TurnstileOnly,
			GroundTruth:     n,
			ExpectTurnstile: n,
			ExpectBaseline:  0,
			Runnable:        true,
			PolicyJSON:      placeholderPolicy,
		}
		app.SourceName = "net.socket:cam-" + name + ":9000"
		app.Profile = profiles[name]
		if app.Profile == "" {
			app.Profile = "light"
		}
		app.OffPathWeight = offPathWeights[name]
		if app.OffPathWeight == 0 {
			app.OffPathWeight = 300 + (i*211)%900
		}
		app.OnPathWeight = onPathWeights[name]
		if app.OnPathWeight == 0 {
			app.OnPathWeight = 2 + (i*5)%9
		}
		app.Source = buildRunnableApp(app, n-1, 0, 0, &unit)
		apps = append(apps, app)
	}
	for i, spec := range bothFoundSpecs {
		app := &App{
			Name:            spec.name,
			Category:        BothFound,
			GroundTruth:     spec.direct + spec.typed + spec.proto,
			ExpectTurnstile: spec.direct + spec.typed,
			ExpectBaseline:  spec.direct + spec.proto,
			Runnable:        true,
			PolicyJSON:      placeholderPolicy,
		}
		app.SourceName = "net.socket:cam-" + spec.name + ":9000"
		app.Profile = profiles[spec.name]
		if app.Profile == "" {
			app.Profile = "light"
		}
		app.OffPathWeight = offPathWeights[spec.name]
		if app.OffPathWeight == 0 {
			app.OffPathWeight = 300 + (i*177)%700
		}
		app.OnPathWeight = onPathWeights[spec.name]
		if app.OnPathWeight == 0 {
			app.OnPathWeight = 2 + (i*3)%8
		}
		// the main pipeline is a direct flow (both analyzers see it)
		app.Source = buildRunnableDirectApp(app, spec.direct-1, spec.typed, spec.proto, &unit)
		apps = append(apps, app)
	}
	for _, spec := range baselineOnlySpecs {
		app := &App{
			Name:            spec.name,
			Category:        BaselineOnly,
			GroundTruth:     spec.proto,
			ExpectTurnstile: 0,
			ExpectBaseline:  spec.proto,
		}
		var b strings.Builder
		header(&b, spec.name)
		for i := 0; i < spec.proto; i++ {
			unitPrototype(&b, &unit)
		}
		padding(&b, spec.name, 6)
		app.Source = b.String()
		apps = append(apps, app)
	}
	for i, name := range frameworkNames {
		n := 2
		if i < 5 {
			n = 3
		}
		app := &App{
			Name:            name,
			Category:        FrameworkMissed,
			GroundTruth:     n,
			ExpectTurnstile: 0,
			ExpectBaseline:  0,
		}
		var b strings.Builder
		header(&b, name)
		for j := 0; j < n; j++ {
			unitFramework(&b, &unit)
		}
		padding(&b, name, 3+i%4)
		app.Source = b.String()
		apps = append(apps, app)
	}
	for i, name := range noPathNames {
		app := &App{
			Name:        name,
			Category:    NoPaths,
			GroundTruth: 0,
		}
		var b strings.Builder
		header(&b, name)
		padding(&b, name, 5+i)
		app.Source = b.String()
		apps = append(apps, app)
	}
	return apps
}

// Runnable filters the corpus to the 27 apps of Part 2.
func Runnable(apps []*App) []*App {
	var out []*App
	for _, a := range apps {
		if a.Runnable {
			out = append(out, a)
		}
	}
	return out
}

// ByName finds an app.
func ByName(apps []*App, name string) *App {
	for _, a := range apps {
		if a.Name == name {
			return a
		}
	}
	return nil
}
