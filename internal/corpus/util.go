// Shared corpus utilities: identifier sanitizing, line-tracked source
// assembly and ground-truth site prefixes (used by both the attack corpus
// and the seeded generator), and the seeded mixing PRNG every generated
// artifact derives from (SplitMix64 — the repo's standard platform-stable
// determinism idiom, see internal/workload).
package corpus

import (
	"fmt"
	"strings"
)

// ident sanitizes an app name into an identifier fragment.
func ident(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '-' || c == '.' {
			b.WriteByte('_')
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// srcBuilder accumulates source text while tracking line numbers, so
// ground-truth site prefixes stay correct as apps evolve.
type srcBuilder struct {
	b    strings.Builder
	line int
}

// add appends one line and returns its 1-based line number.
func (s *srcBuilder) add(text string) int {
	s.line++
	s.b.WriteString(text)
	s.b.WriteByte('\n')
	return s.line
}

// addf is add with fmt.Sprintf formatting. The rendered text must be a
// single line; embedded newlines would desynchronize the tracked numbers,
// so multi-line chunks go through addBlock instead.
func (s *srcBuilder) addf(format string, args ...any) int {
	return s.add(fmt.Sprintf(format, args...))
}

// addBlock appends a multi-line chunk and returns the line number of its
// first line. A trailing newline does not produce an extra empty line.
func (s *srcBuilder) addBlock(text string) int {
	first := s.line + 1
	for _, ln := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		s.add(ln)
	}
	return first
}

func (s *srcBuilder) String() string { return s.b.String() }

// sitePrefix renders the ground-truth prefix for a sink call on a line.
func sitePrefix(app string, line int) string {
	return fmt.Sprintf("%s.js:%d:", app, line)
}

// rng is a SplitMix64 stream: a pure function of its seed, stable across
// platforms and Go versions (unlike math/rand), so every generated app is
// reproducible from (seed, stratum, size) alone.
type rng struct{ state uint64 }

// newRng derives an independent stream from a seed and a name, mirroring
// workload.GenerateTrace's (seed, name) keying.
func newRng(seed uint64, name string) *rng {
	return &rng{state: mix64(seed ^ hash64(name))}
}

// next returns the next 64-bit value of the stream.
func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	x := r.state
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// intn returns a value in [0, n); n must be positive.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// rangeInt returns a value in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// token returns a short deterministic uppercase token, for secret values.
func (r *rng) token(n int) string {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[r.intn(len(alphabet))])
	}
	return b.String()
}

// mix64 is SplitMix64's finalizer.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hash64 is FNV-1a.
func hash64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
