// Ground-truth machinery for the seeded generator: the GenApp type every
// stratum produces, the machine-checkable must-catch/must-allow contract
// (attack.go style), and the generated-policy builder with its
// mirrored-CNF knob (the metamorphic battery runs every generated app
// under both the flat policy and an isomorphic mirrored-clause copy and
// asserts identical flow decisions).
package corpus

import (
	"fmt"
	"sort"
	"strings"
)

// GenApp is one generated application with built-in ground truth. It is a
// pure function of (Stratum, Seed, Size): regenerating with the same
// coordinates yields byte-identical sources, policy and ground truth.
type GenApp struct {
	Name    string
	Stratum string
	Seed    uint64
	Size    int
	// Files maps file name → MiniJS source. Single-file apps use
	// Name+".js"; the relay-chain stratum adds module files.
	Files map[string]string
	// Policy is the flat IFC policy JSON the app is scored under.
	Policy string
	// MirrorPolicy is the isomorphic mirrored-clause copy: every label l
	// becomes the OR-clause "l|lM" over a doubled rule graph. By mirror
	// equivalence, every flow decision under MirrorPolicy must equal the
	// flat decision — the metamorphic battery's flat≡CNF relation.
	MirrorPolicy string
	// Sources are the interpreter I/O source names the scorer pumps,
	// round-robin; empty means the app does all its work at load time.
	Sources []string
	// Event is the source event name ("data", "message").
	Event string
	// Messages is how many arrivals the scorer pumps before scoring.
	Messages int
	// MustCatch lists violation-site prefixes that must each match at
	// least one recorded violation ("name.js:LINE:").
	MustCatch []string
	// MustAllow lists site prefixes that must match no violation at all.
	MustAllow []string
}

// Payload builds the i-th pumped arrival for a generated app: a
// deterministic frame derived from the app's seed, roughly half carrying
// the "E" marker so value-dependent labellers exercise both branches.
func (g *GenApp) Payload(i int) string {
	h := mix64(g.Seed ^ uint64(i)*0x9E3779B97F4A7C15)
	if h%2 == 0 {
		return fmt.Sprintf("reading%d:E%d", i, h%97)
	}
	return fmt.Sprintf("reading%d:", i)
}

// EntryFile is the deployment entry source file name.
func (g *GenApp) EntryFile() string { return g.Name + ".js" }

// CheckConsistency validates the internal ground-truth contract: the
// must-catch and must-allow sets are disjoint, every site prefix is
// well-formed, and line-numbered prefixes reference lines that exist in
// the named file. The fuzz target gates on this for every reachable
// (seed, stratum, size).
func (g *GenApp) CheckConsistency() error {
	if g.Name == "" || g.Stratum == "" {
		return fmt.Errorf("gen: app missing name or stratum")
	}
	if len(g.Files) == 0 {
		return fmt.Errorf("gen: %s: no source files", g.Name)
	}
	if _, ok := g.Files[g.EntryFile()]; !ok {
		return fmt.Errorf("gen: %s: entry file %s missing", g.Name, g.EntryFile())
	}
	if len(g.MustCatch) == 0 && len(g.MustAllow) == 0 {
		return fmt.Errorf("gen: %s: no ground truth at all", g.Name)
	}
	if len(g.Sources) > 0 && g.Messages <= 0 {
		return fmt.Errorf("gen: %s: has sources but pumps no messages", g.Name)
	}
	catch := make(map[string]bool, len(g.MustCatch))
	for _, p := range g.MustCatch {
		catch[p] = true
	}
	for _, p := range g.MustAllow {
		if catch[p] {
			return fmt.Errorf("gen: %s: prefix %q is both must-catch and must-allow", g.Name, p)
		}
	}
	for _, p := range append(append([]string{}, g.MustCatch...), g.MustAllow...) {
		file, line, err := splitSitePrefix(p)
		if err != nil {
			return fmt.Errorf("gen: %s: %w", g.Name, err)
		}
		src, ok := g.Files[file]
		if !ok {
			return fmt.Errorf("gen: %s: prefix %q names unknown file %s", g.Name, p, file)
		}
		if n := strings.Count(src, "\n"); line < 1 || line > n {
			return fmt.Errorf("gen: %s: prefix %q line %d out of range (%s has %d lines)",
				g.Name, p, line, file, n)
		}
	}
	return nil
}

// splitSitePrefix decomposes "file.js:LINE:" into its parts.
func splitSitePrefix(p string) (file string, line int, err error) {
	rest, ok := strings.CutSuffix(p, ":")
	if !ok {
		return "", 0, fmt.Errorf("malformed site prefix %q", p)
	}
	i := strings.LastIndexByte(rest, ':')
	if i < 0 {
		return "", 0, fmt.Errorf("malformed site prefix %q", p)
	}
	file = rest[:i]
	for _, c := range rest[i+1:] {
		if c < '0' || c > '9' {
			return "", 0, fmt.Errorf("malformed site prefix %q", p)
		}
		line = line*10 + int(c-'0')
	}
	if line == 0 {
		return "", 0, fmt.Errorf("malformed site prefix %q", p)
	}
	return file, line, nil
}

// genPolicySpec describes the policy a stratum generator needs: which
// object names carry which base label, and whether the clause-aware
// tracker paths (deep property collection) must be enabled.
type genPolicySpec struct {
	// inject maps object name → base label ("Secret" or "Public").
	inject map[string]string
	// cnfEnable switches the tracker onto the clause-aware paths (the
	// computed-key stratum needs deep property collection).
	cnfEnable bool
}

// render builds the policy JSON. With mirrored set, every label l becomes
// the clause "l|lM" and the rule DAG is doubled isomorphically.
func (s *genPolicySpec) render(mirrored bool) string {
	label := func(l string) string {
		if mirrored {
			return l + "|" + l + "M"
		}
		return l
	}
	var b strings.Builder
	b.WriteString("{\n  \"labellers\": {\n")
	b.WriteString(fmt.Sprintf("    \"AsSecret\": %q,\n", fmt.Sprintf("v => %q", label("Secret"))))
	b.WriteString(fmt.Sprintf("    \"AsSink\": %q\n", fmt.Sprintf("v => %q", label("Public"))))
	b.WriteString("  },\n")
	if mirrored {
		b.WriteString("  \"rules\": [ \"Public -> Secret\", \"PublicM -> SecretM\" ],\n")
	} else {
		b.WriteString("  \"rules\": [ \"Public -> Secret\" ],\n")
	}
	b.WriteString("  \"injections\": [\n")
	names := make([]string, 0, len(s.inject))
	for n := range s.inject {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		labeller := "AsSink"
		if s.inject[n] == "Secret" {
			labeller = "AsSecret"
		}
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		fmt.Fprintf(&b, "    { \"object\": %q, \"labeller\": %q }%s\n", n, labeller, comma)
	}
	b.WriteString("  ]")
	if s.cnfEnable {
		// a minimal CNF block whose only purpose is switching the tracker
		// onto the clause-aware paths (attack.go's cnfEnable idiom)
		b.WriteString(",\n  \"endorsements\": [ { \"name\": \"unused\", \"adds\": \"Unused\" } ]")
	}
	b.WriteString("\n}")
	return b.String()
}
