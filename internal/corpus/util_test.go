package corpus

import (
	"strings"
	"testing"
)

func TestIdent(t *testing.T) {
	cases := map[string]string{
		"nlp.js":        "nlp_js",
		"cam-gateway":   "cam_gateway",
		"plain":         "plain",
		"a.b-c":         "a_b_c",
		"gen-relay-01x": "gen_relay_01x",
	}
	for in, want := range cases {
		if got := ident(in); got != want {
			t.Errorf("ident(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSrcBuilderLineTracking: the returned line numbers must match what a
// line-counting read of the assembled source says, for every add flavor —
// the whole ground-truth contract hangs on this.
func TestSrcBuilderLineTracking(t *testing.T) {
	var b srcBuilder
	l1 := b.add("const a = 1;")
	l2 := b.addf("const b = %d;", 2)
	l3 := b.addBlock("function f() {\n  return a + b;\n}")
	l4 := b.addBlock("const c = f();\n") // trailing newline: still one line
	l5 := b.add("c;")
	src := b.String()
	lines := strings.Split(strings.TrimSuffix(src, "\n"), "\n")
	if want := []int{1, 2, 3, 6, 7}; l1 != want[0] || l2 != want[1] || l3 != want[2] || l4 != want[3] || l5 != want[4] {
		t.Fatalf("line numbers = %v, want %v", []int{l1, l2, l3, l4, l5}, want)
	}
	if len(lines) != 7 {
		t.Fatalf("assembled source has %d lines, want 7:\n%s", len(lines), src)
	}
	if lines[l3-1] != "function f() {" {
		t.Fatalf("line %d = %q, want the block's first line", l3, lines[l3-1])
	}
	if lines[l5-1] != "c;" {
		t.Fatalf("line %d = %q, want %q", l5, lines[l5-1], "c;")
	}
}

func TestSitePrefixRoundTrip(t *testing.T) {
	p := sitePrefix("gen-x", 42)
	if p != "gen-x.js:42:" {
		t.Fatalf("sitePrefix = %q", p)
	}
	file, line, err := splitSitePrefix(p)
	if err != nil || file != "gen-x.js" || line != 42 {
		t.Fatalf("splitSitePrefix(%q) = %q, %d, %v", p, file, line, err)
	}
	for _, bad := range []string{"", "x.js", "x.js:", "x.js:0:", "x.js:4a:", "noline:"} {
		if _, _, err := splitSitePrefix(bad); err == nil {
			t.Errorf("splitSitePrefix(%q) accepted malformed prefix", bad)
		}
	}
}

// TestRngPlatformStability pins the first values of a keyed stream to
// constants: the SplitMix64 stream must be a pure function of (seed, name)
// on every platform and Go version, or generated apps stop being
// reproducible coordinates.
func TestRngPlatformStability(t *testing.T) {
	r := newRng(7, "gen-check")
	got := []uint64{r.next(), r.next(), r.next()}
	r2 := newRng(7, "gen-check")
	want := []uint64{r2.next(), r2.next(), r2.next()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stream not reproducible at %d: %x vs %x", i, got[i], want[i])
		}
	}
	if newRng(7, "gen-check").next() == newRng(8, "gen-check").next() {
		t.Error("seed does not influence the stream")
	}
	if newRng(7, "gen-check").next() == newRng(7, "gen-other").next() {
		t.Error("name does not influence the stream")
	}
	// pinned constants: fail here means the mixing recipe changed and every
	// committed golden and calibrated ground truth silently shifted
	if x := mix64(0); x != 0xE220A8397B1DCDAF {
		t.Errorf("mix64(0) = %#x, want 0xE220A8397B1DCDAF", x)
	}
	if h := hash64("turnstile"); h != newRngProbe("turnstile") {
		t.Errorf("hash64 drifted: %#x", h)
	}
}

// newRngProbe recomputes FNV-1a inline so the test does not just compare
// the function to itself.
func newRngProbe(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func TestRngBounds(t *testing.T) {
	r := newRng(3, "bounds")
	for i := 0; i < 1000; i++ {
		if v := r.intn(7); v < 0 || v >= 7 {
			t.Fatalf("intn(7) = %d out of range", v)
		}
		if v := r.rangeInt(2, 5); v < 2 || v > 5 {
			t.Fatalf("rangeInt(2,5) = %d out of range", v)
		}
	}
	if v := r.rangeInt(4, 4); v != 4 {
		t.Fatalf("rangeInt(4,4) = %d", v)
	}
	tok := r.token(8)
	if len(tok) != 8 || strings.ToUpper(tok) != tok {
		t.Fatalf("token = %q, want 8 uppercase letters", tok)
	}
}
