package corpus

import (
	"fmt"
	"strings"
)

func header(b *strings.Builder, name string) {
	fmt.Fprintf(b, "// %s — synthetic third-party Node-RED application\n", name)
	b.WriteString("const net = require(\"net\");\n")
	b.WriteString("const fs = require(\"fs\");\n\n")
}

// unitTypedInterproc emits one flow that passes both the connection and the
// sink through user-function parameters: detected only by Turnstile's
// type-sensitive interprocedural analysis.
func unitTypedInterproc(b *strings.Builder, unit *int) {
	u := *unit
	*unit = *unit + 1
	fmt.Fprintf(b, `function feedU%d(conn, sink) {
  conn.on("data", d => relayU%d(sink, d));
}
function relayU%d(sink, d) {
  sink.write(d.trim());
}
feedU%d(net.connect({ host: "dev%d", port: 1883 }), fs.createWriteStream("/spool/u%d"));

`, u, u, u, u, u, u)
}

// unitDirect emits one same-scope source→sink flow: detected by both tools.
func unitDirect(b *strings.Builder, unit *int) {
	u := *unit
	*unit = *unit + 1
	fmt.Fprintf(b, `const rdU%d = fs.createReadStream("/in/u%d");
const wrU%d = fs.createWriteStream("/copy/u%d");
rdU%d.on("data", c%d => { wrU%d.write(c%d.toUpperCase()); });

`, u, u, u, u, u, u, u, u)
}

// unitPrototype emits one flow through the JavaScript prototype chain:
// detected only by the baseline (§6.1).
func unitPrototype(b *strings.Builder, unit *int) {
	u := *unit
	*unit = *unit + 1
	fmt.Fprintf(b, `function RecorderU%d() { this.dest = fs.createWriteStream("/rec/u%d"); }
RecorderU%d.prototype.save = function(d) { this.dest.write(d); };
const recU%d = new RecorderU%d();
const camU%d = fs.createReadStream("/cam/u%d");
camU%d.on("data", d => recU%d.save(d));

`, u, u, u, u, u, u, u, u, u)
}

// unitFramework emits one flow through RED.httpNode — the
// framework-injected API neither tool can statically type (§6.1).
func unitFramework(b *strings.Builder, unit *int) {
	u := *unit
	*unit = *unit + 1
	fmt.Fprintf(b, `RED.httpNode.get("/api/u%d", function(req, res) {
  res.send(req.query);
});

`, u)
}

// padding emits pure-compute helper functions: realistic bulk that carries
// no privacy-sensitive dataflow.
func padding(b *strings.Builder, name string, count int) {
	id := ident(name)
	for i := 0; i < count; i++ {
		fmt.Fprintf(b, `function helper_%s_%d(x, y) {
  let out = x * 2 + y;
  for (let i = 0; i < 3; i++) {
    out = out + i * i;
  }
  if (out > 100) { out = out - 50; }
  return out;
}
`, id, i)
	}
	fmt.Fprintf(b, "const calibration_%s = helper_%s_0(7, 9);\n\n", id, id)
}

// dictLiteral emits the token dictionary scanned per message by the
// off-path work (the nlp.js effect of §6.2).
func dictLiteral(b *strings.Builder, name string, size int) {
	id := ident(name)
	fmt.Fprintf(b, "const DICT_%s = [", id)
	for i := 0; i < size; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		if i%16 == 0 {
			b.WriteString("\n  ")
		}
		fmt.Fprintf(b, "\"tok%d\"", i)
	}
	b.WriteString("\n];\n\n")
}

// mainPipelineBody emits the message-handler body shared by the runnable
// templates: off-path work on non-sensitive data (only exhaustive
// instrumentation pays for it) followed by an on-path transformation of the
// frame (sensitive — selective instrumentation covers it too). The shape of
// the off-path work depends on the app's workload profile.
func mainPipelineBody(b *strings.Builder, app *App, sinkExpr, dictExpr string) {
	switch app.Profile {
	case "dict":
		// the nlp.js blowup (§6.2): a dense per-token scan where nearly
		// every operation is a dataflow expression — exhaustive tracking
		// converts each of them into tracker calls and heap boxes
		fmt.Fprintf(b, `  let acc = 0;
  for (let di = 0; di < %s.length; di++) {
    const tok = %s[di] + "|";
    const score = tok.length * 2 - 1 + di %% 7;
    const tag = tok + "#" + score;
    acc = acc + tag.length - tok.length + 1;
  }
`, dictExpr, dictExpr)
	case "decode":
		// instrumented helper loop over the full weight (modbus decodes
		// every register of every frame)
		fmt.Fprintf(b, `  let acc = 0;
  for (let di = 0; di < %s.length; di++) {
    acc = acc + (%s[di] + "|").length - 1;
  }
`, dictExpr, dictExpr)
	case "api":
		// native request-building bulk plus a moderate instrumented loop
		fmt.Fprintf(b, `  const body = %s.join(",");
  let acc = body.length;
  for (let di = 0; di < %s.length; di = di + 8) {
    acc = acc + (%s[di] + "|").length - 1;
  }
`, dictExpr, dictExpr, dictExpr)
	default: // "light": native bulk dominates; tracking has little to do
		fmt.Fprintf(b, `  const blob = %s.join("-");
  const digest = blob.split("-");
  let acc = blob.length + digest.length;
`, dictExpr)
	}
	fmt.Fprintf(b, `  let record = "";
  const parts = frame.split("|");
  for (let pj = 0; pj < parts.length; pj++) {
    const fields = parts[pj].split(":");
    record = record + fields[0] + "=" + fields[1] + ";";
  }
  for (let wk = 0; wk < %d; wk++) {
    record = record + "#";
  }
  %s.write(record + "/" + acc);
`, app.OnPathWeight, sinkExpr)
}

// buildRunnableApp assembles a TurnstileOnly runnable app: the main
// pipeline passes its I/O objects through function parameters (typed
// interprocedural flow), plus extra typed units, plus padding.
func buildRunnableApp(app *App, extraTyped, extraDirect, extraProto int, unit *int) string {
	var b strings.Builder
	header(&b, app.Name)
	id := ident(app.Name)
	dictLiteral(&b, app.Name, app.OffPathWeight)

	fmt.Fprintf(&b, "function attachMain_%s(conn, sink, dict) {\n", id)
	fmt.Fprintf(&b, "  conn.on(\"data\", frame => { handleMain_%s(frame, sink, dict); });\n", id)
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "function handleMain_%s(frame, sink, dict) {\n", id)
	mainPipelineBody(&b, app, "sink", "dict")
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "attachMain_%s(net.connect({ host: \"cam-%s\", port: 9000 }), fs.createWriteStream(\"/data/%s.log\"), DICT_%s);\n\n",
		id, app.Name, app.Name, id)

	for i := 0; i < extraTyped; i++ {
		unitTypedInterproc(&b, unit)
	}
	for i := 0; i < extraDirect; i++ {
		unitDirect(&b, unit)
	}
	for i := 0; i < extraProto; i++ {
		unitPrototype(&b, unit)
	}
	padding(&b, app.Name, 4)
	return b.String()
}

// buildRunnableDirectApp assembles a BothFound runnable app: the main
// pipeline is a direct same-scope flow both analyzers detect.
func buildRunnableDirectApp(app *App, extraDirect, extraTyped, extraProto int, unit *int) string {
	var b strings.Builder
	header(&b, app.Name)
	id := ident(app.Name)
	dictLiteral(&b, app.Name, app.OffPathWeight)

	fmt.Fprintf(&b, "const socket_%s = net.connect({ host: \"cam-%s\", port: 9000 });\n", id, app.Name)
	fmt.Fprintf(&b, "const mainOut_%s = fs.createWriteStream(\"/data/%s.log\");\n", id, app.Name)
	fmt.Fprintf(&b, "socket_%s.on(\"data\", frame => {\n", id)
	mainPipelineBody(&b, app, "mainOut_"+id, "DICT_"+id)
	fmt.Fprintf(&b, "});\n\n")

	for i := 0; i < extraDirect; i++ {
		unitDirect(&b, unit)
	}
	for i := 0; i < extraTyped; i++ {
		unitTypedInterproc(&b, unit)
	}
	for i := 0; i < extraProto; i++ {
		unitPrototype(&b, unit)
	}
	padding(&b, app.Name, 4)
	return b.String()
}
