package baseline

import (
	"testing"

	"turnstile/internal/parser"
	"turnstile/internal/taint"
)

func analyzeSrc(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := parser.Parse("app.js", src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze([]taint.File{{Name: "app.js", Prog: prog}})
}

func wantPaths(t *testing.T, res *Result, n int) {
	t.Helper()
	if len(res.Paths) != n {
		t.Fatalf("paths = %d, want %d\n%+v", len(res.Paths), n, res.Paths)
	}
}

func TestDirectSocketFlowFound(t *testing.T) {
	res := analyzeSrc(t, `
const net = require("net");
const socket = net.connect({ host: "cam", port: 554 });
socket.on("data", frame => {
  socket.write(frame);
});
`)
	wantPaths(t, res, 1)
	if res.InstrCount == 0 {
		t.Fatal("IR not extracted")
	}
}

func TestStreamCopyFound(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const rs = fs.createReadStream("/in");
const ws = fs.createWriteStream("/out");
rs.on("data", chunk => {
  const upper = chunk.toUpperCase();
  ws.write(upper);
});
`)
	wantPaths(t, res, 1)
}

func TestInterproceduralTypedFlowMissed(t *testing.T) {
	// The baseline's central weakness (§6.1): the socket and mqtt client
	// are passed as function arguments, so their types are unknown in the
	// callee and no source/sink is recognized there.
	res := analyzeSrc(t, `
const net = require("net");
const mqtt = require("mqtt");
function wire(conn, client) {
  conn.on("data", d => client.publish("t", d));
}
wire(net.connect({ host: "h", port: 1 }), mqtt.connect("mqtt://b"));
`)
	wantPaths(t, res, 0)
}

func TestPrototypeChainFlowFound(t *testing.T) {
	// The baseline's strength (§6.1): prototype-chain reflective code.
	res := analyzeSrc(t, `
const fs = require("fs");
function Archiver() { this.out = fs.createWriteStream("/arch"); }
Archiver.prototype.store = function(data) { this.out.write(data); };
const arch = new Archiver();
const rs = fs.createReadStream("/in");
rs.on("data", d => arch.store(d));
`)
	wantPaths(t, res, 1)
	if res.Paths[0].SinkKind != "stream.write" {
		t.Fatalf("path = %+v", res.Paths[0])
	}
}

func TestRedHttpNodeMissedByBaselineToo(t *testing.T) {
	res := analyzeSrc(t, `
module.exports = function(RED) {
  RED.httpNode.get("/faces", function(req, res) {
    res.send(req.query);
  });
};
`)
	wantPaths(t, res, 0)
}

func TestNodeRedDirectFlowFound(t *testing.T) {
	// the NodeRedSource/NodeRedSink selectors of Fig. 8 cover the direct
	// same-scope pattern
	res := analyzeSrc(t, `
function FilterNode(config) {
  RED.nodes.createNode(this, config);
  this.on("input", function(msg) {
    this.send(msg);
  });
}
`)
	// `this` inside the nested handler resolves to a different scope key,
	// so only patterns via an alias are found; use the alias form:
	res2 := analyzeSrc(t, `
const RED = requireRED();
function FilterNode(config) {
  RED.nodes.createNode(this, config);
  const node = this;
  node.on("input", function(msg) {
    node.send(msg);
  });
}
`)
	_ = res
	_ = res2
	// at least one of the two idioms must be detected
	if len(res.Paths)+len(res2.Paths) == 0 {
		t.Fatalf("no Node-RED flow found: %+v / %+v", res.Paths, res2.Paths)
	}
}

func TestMailAndSQLiteSinks(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const nodemailer = require("nodemailer");
const sqlite3 = require("sqlite3");
const transport = nodemailer.createTransport({});
const db = new sqlite3.Database("/d.db");
const rs = fs.createReadStream("/frames");
rs.on("data", frame => {
  transport.sendMail({ to: "x", attachments: [frame] });
  db.run("INSERT", [frame]);
});
`)
	wantPaths(t, res, 2)
}

func TestNoFalsePositives(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
const conf = { a: 1 };
fs.writeFileSync("/out", JSON.stringify(conf));
`)
	wantPaths(t, res, 0)
}

func TestSlowerThanTurnstile(t *testing.T) {
	// the timing claim of §6.1, in miniature: on the same app the baseline
	// does substantially more work. Use a moderately sized program.
	src := `
const fs = require("fs");
const rs = fs.createReadStream("/in");
const ws = fs.createWriteStream("/out");
`
	body := ""
	for i := 0; i < 60; i++ {
		body += "function helper" + string(rune('A'+i%26)) + string(rune('0'+i/26)) + "(x) {\n"
		body += "  const a = x + 1;\n  const b = a * 2;\n  const c = { v: b, w: [a, b] };\n  return c.v + c.w.length;\n}\n"
	}
	src += body + `
rs.on("data", chunk => { ws.write(chunk); });
`
	prog := parser.MustParse("big.js", src)
	files := []taint.File{{Name: "big.js", Prog: prog}}

	base := Analyze(files)
	fast := taint.Analyze(files, taint.DefaultOptions())
	if len(base.Paths) != 1 || len(fast.Paths) != 1 {
		t.Fatalf("paths: baseline=%d turnstile=%d", len(base.Paths), len(fast.Paths))
	}
	if base.Duration <= fast.Duration {
		t.Logf("warning: baseline (%v) not slower than turnstile (%v) on this small input", base.Duration, fast.Duration)
	}
}

func TestExpressResponseSink(t *testing.T) {
	res := analyzeSrc(t, `
const express = require("express");
const app = express();
app.get("/x", (req, res) => {
  res.send(req.query);
});
`)
	wantPaths(t, res, 1)
}

func TestReadFileCallbackSource(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
fs.readFile("/secret", (err, data) => {
  fs.writeFileSync("/copy", data);
});
`)
	wantPaths(t, res, 1)
}

func TestIRExtraction(t *testing.T) {
	prog := parser.MustParse("ir.js", `
const x = 1 + 2;
function f(a) { return a * x; }
const o = { k: f(3) };
o.k = 4;
for (const v of [1, 2]) { f(v); }
`)
	db := Extract([]taint.File{{Name: "ir.js", Prog: prog}})
	if len(db.Instrs) < 15 {
		t.Fatalf("instrs = %d", len(db.Instrs))
	}
	if len(db.Funcs) != 1 || db.Funcs[0].Name != "f" {
		t.Fatalf("funcs = %+v", db.Funcs)
	}
	if len(db.propWrites["k"]) != 2 {
		t.Fatalf("propWrites[k] = %v", db.propWrites["k"])
	}
	ops := map[Op]int{}
	for _, in := range db.Instrs {
		ops[in.Op]++
	}
	for _, op := range []Op{OpConst, OpLoad, OpStore, OpCall, OpBinOp, OpPropWrite} {
		if ops[op] == 0 {
			t.Errorf("no %v instructions", op)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpCall.String() != "call" || OpPropRead.String() != "propread" {
		t.Fatal("op names")
	}
}

func TestDatabaseFinalize(t *testing.T) {
	prog := parser.MustParse("db.js", `
const fs = require("fs");
function copy(a) { return a; }
const ws = fs.createWriteStream("/o");
fs.createReadStream("/i").on("data", d => ws.write(copy(d)));
`)
	files := []taint.File{{Name: "db.js", Prog: prog}}
	db := Extract(files)
	rdb := Finalize(db, files)
	if rdb.TupleCount() == 0 {
		t.Fatal("no tuples extracted")
	}
	for _, rel := range []string{"instructions", "names", "operands", "functions", "ast_nodes", "var_defs"} {
		if len(rdb.Relations[rel]) == 0 {
			t.Errorf("relation %q empty", rel)
		}
		if len(rdb.Index[rel]) != len(rdb.Relations[rel]) {
			t.Errorf("relation %q index size mismatch", rel)
		}
	}
	if rdb.Archive["db.js"] == "" {
		t.Fatal("source archive missing")
	}
	res := Analyze(files)
	if res.TupleCount == 0 || res.InstrCount == 0 {
		t.Fatalf("result sizes: %+v", res)
	}
}

func TestBaselineEndpointsReported(t *testing.T) {
	res := analyzeSrc(t, `
const fs = require("fs");
fs.createReadStream("/a").on("data", d => {});
fs.createWriteStream("/b").write("static");
`)
	if len(res.Sources) != 1 || len(res.Sinks) != 1 {
		t.Fatalf("sources=%d sinks=%d", len(res.Sources), len(res.Sinks))
	}
	if len(res.Paths) != 0 {
		t.Fatalf("paths = %+v", res.Paths)
	}
}
