package baseline

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"turnstile/internal/ast"
	"turnstile/internal/printer"
	"turnstile/internal/taint"
)

// Database is the finalized relational store of the baseline pipeline.
// General-purpose engines serialize the whole program into relational
// tuples before any query runs (CodeQL's trap files plus a source
// archive); the specialized Turnstile analyzer skips this stage entirely,
// which is a large part of the speed difference (§6.1).
type Database struct {
	// Relations maps relation name → tuples.
	Relations map[string][][]string
	// Index maps relation name → sorted join keys (first column).
	Index map[string][]string
	// Archive holds the pretty-printed source of each file.
	Archive map[string]string
	// interned strings (trap files intern every symbol)
	symbols map[string]int
}

// TupleCount returns the total number of stored tuples.
func (d *Database) TupleCount() int {
	n := 0
	for _, tuples := range d.Relations {
		n += len(tuples)
	}
	return n
}

// Finalize serializes the extracted IR and the original files into the
// relational store: one tuple per instruction fact, per operand, per name
// binding, per function, plus interning and sorted join indexes.
func Finalize(db *DB, files []taint.File) *Database {
	d := &Database{
		Relations: map[string][][]string{},
		Index:     map[string][]string{},
		Archive:   map[string]string{},
		symbols:   map[string]int{},
	}
	intern := func(s string) string {
		if _, ok := d.symbols[s]; !ok {
			d.symbols[s] = len(d.symbols)
		}
		return s
	}
	add := func(rel string, cols ...string) {
		for i := range cols {
			cols[i] = intern(cols[i])
		}
		d.Relations[rel] = append(d.Relations[rel], cols)
	}
	for i := range db.Instrs {
		in := &db.Instrs[i]
		id := fmt.Sprintf("#%d", in.ID)
		add("instructions", id, in.Op.String(), in.File,
			fmt.Sprintf("%d", in.Pos.Line), fmt.Sprintf("%d", in.Pos.Col))
		if in.Name != "" {
			add("names", id, in.Name)
		}
		if in.Str != "" {
			add("string_values", id, in.Str)
		}
		for ai, a := range in.Args {
			add("operands", id, fmt.Sprintf("%d", ai), fmt.Sprintf("#%d", a))
		}
		if in.Op == OpFunc {
			add("func_values", id, fmt.Sprintf("f%d", in.Fn))
		}
	}
	for fi := range db.Funcs {
		fn := &db.Funcs[fi]
		add("functions", fmt.Sprintf("f%d", fi), fn.Name, fn.File, fmt.Sprintf("%d", len(fn.Params)))
		for pi, p := range fn.Params {
			add("parameters", fmt.Sprintf("f%d", fi), fmt.Sprintf("%d", pi), fmt.Sprintf("#%d", p))
		}
		for _, r := range fn.Returns {
			add("returns", fmt.Sprintf("f%d", fi), fmt.Sprintf("#%d", r))
		}
	}
	for name, defs := range db.varDefs {
		for _, def := range defs {
			add("var_defs", name, fmt.Sprintf("#%d", def))
		}
	}
	for prop, writes := range db.propWrites {
		for _, w := range writes {
			add("prop_writes", prop, fmt.Sprintf("#%d", w))
		}
	}
	for prop, reads := range db.propReads {
		for _, r := range reads {
			add("prop_reads", prop, fmt.Sprintf("#%d", r))
		}
	}
	// AST extraction: one tuple per syntax node with its kind and location
	// (what trap-file extractors emit for every file)
	for _, f := range files {
		ast.Walk(f.Prog, func(n ast.Node) bool {
			add("ast_nodes", fmt.Sprintf("n%d", n.NodeID()), reflect.TypeOf(n).String(),
				f.Name, fmt.Sprintf("%d", n.Pos().Line), fmt.Sprintf("%d", n.Pos().Col))
			return true
		})
	}

	// source archive: the engine keeps a rendered copy of every file
	for _, f := range files {
		d.Archive[f.Name] = printer.Print(f.Prog)
	}
	// sorted join indexes over every relation's key column
	for rel, tuples := range d.Relations {
		keys := make([]string, len(tuples))
		for i, t := range tuples {
			keys[i] = t[0] + "\x00" + strings.Join(t[1:], "\x00")
		}
		sort.Strings(keys)
		d.Index[rel] = keys
	}
	return d
}
