// Package baseline is the CodeQL-equivalent comparator of §6.1: a
// general-purpose static taint analyzer that first extracts the program
// into an intermediate representation (a relational "database" of
// instructions), then evaluates a taint-tracking query over it with an
// iterative fixpoint.
//
// Its capabilities deliberately mirror the paper's observations about
// CodeQL:
//
//   - It performs no type inference across user-function boundaries, so an
//     I/O object passed as a function argument is not recognized as a
//     source or sink inside the callee (the flows Turnstile finds and the
//     baseline misses).
//   - It does track the constructor/prototype-chain idiom
//     (F.prototype.m = function, new F()), which Turnstile's analyzer does
//     not (the two apps where CodeQL outperformed Turnstile).
//   - The IR extraction and the general fixpoint evaluation do
//     substantially more work per program than Turnstile's specialized
//     AST-direct analysis, which is why it is an order of magnitude slower.
package baseline

import (
	"fmt"

	"turnstile/internal/ast"
	"turnstile/internal/taint"
)

// Op enumerates IR instruction kinds.
type Op int

// IR instruction kinds emitted by the extractor.
const (
	OpConst Op = iota
	OpLoad
	OpStore
	OpPropRead
	OpPropWrite
	OpCall
	OpNew
	OpParam
	OpReturn
	OpBinOp
	OpObject
	OpArray
	OpFunc
	OpPhi
)

var opNames = [...]string{"const", "load", "store", "propread", "propwrite",
	"call", "new", "param", "return", "binop", "object", "array", "func", "phi"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Instr is one IR instruction. Values are instruction indices.
type Instr struct {
	ID   int
	Op   Op
	Args []int  // operand value IDs
	Name string // variable / property / callee-ish name
	Str  string // string-literal payload
	Fn   int    // function table index for OpFunc
	Pos  ast.Pos
	File string
	Node int // originating AST node ID
}

// FuncIR is the IR of one function body.
type FuncIR struct {
	Index   int
	Name    string
	Params  []int // instruction IDs of OpParam
	Entry   int   // first instruction ID
	Decl    *ast.FuncLit
	File    string
	Returns []int // instruction IDs of OpReturn args
}

// DB is the extracted relational database for an application.
type DB struct {
	Instrs []Instr
	Funcs  []FuncIR
	// varDefs maps (scopeKey, varName) → defining instruction IDs.
	varDefs map[string][]int
	// propWrites maps property name → writing instruction IDs (field-based
	// flow, like CodeQL's default object model).
	propWrites map[string][]int
	propReads  map[string][]int
	// protoMethods maps constructorName.method → function index.
	protoMethods map[string]int
	// ctorFields maps constructorName.field → defining instruction IDs.
	ctorFields map[string][]int
	// funcByName maps top-level function names to function index.
	funcByName map[string]int
}

// extractor lowers ASTs to IR.
type extractor struct {
	db      *DB
	file    string
	scope   string
	fnStack []int
}

// Extract builds the IR database for an application's files.
func Extract(files []taint.File) *DB {
	db := &DB{
		varDefs:      map[string][]int{},
		propWrites:   map[string][]int{},
		propReads:    map[string][]int{},
		protoMethods: map[string]int{},
		ctorFields:   map[string][]int{},
		funcByName:   map[string]int{},
	}
	for _, f := range files {
		ex := &extractor{db: db, file: f.Name, scope: f.Name + "::"}
		ex.stmts(f.Prog.Body)
	}
	db.indexRelations()
	return db
}

func (ex *extractor) emit(op Op, name string, args ...int) int {
	id := len(ex.db.Instrs)
	ex.db.Instrs = append(ex.db.Instrs, Instr{
		ID: id, Op: op, Name: name, Args: args, File: ex.file,
	})
	return id
}

func (ex *extractor) emitAt(op Op, name string, n ast.Node, args ...int) int {
	id := ex.emit(op, name, args...)
	ex.db.Instrs[id].Pos = n.Pos()
	ex.db.Instrs[id].Node = n.NodeID()
	return id
}

func (ex *extractor) scoped(name string) string { return ex.scope + name }

func (ex *extractor) stmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		ex.stmt(s)
	}
}

func (ex *extractor) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.VarDecl:
		for _, d := range x.Decls {
			var v int
			if d.Init != nil {
				v = ex.expr(d.Init)
			} else {
				v = ex.emitAt(OpConst, "undefined", d)
			}
			st := ex.emitAt(OpStore, ex.scoped(d.Name), d, v)
			ex.db.varDefs[ex.scoped(d.Name)] = append(ex.db.varDefs[ex.scoped(d.Name)], st)
		}
	case *ast.FuncDecl:
		fi := ex.function(x.Fn, x.Name)
		fn := ex.emitAt(OpFunc, x.Name, x)
		ex.db.Instrs[fn].Fn = fi
		st := ex.emitAt(OpStore, ex.scoped(x.Name), x, fn)
		ex.db.varDefs[ex.scoped(x.Name)] = append(ex.db.varDefs[ex.scoped(x.Name)], st)
		if ex.scopeDepth() == 0 {
			ex.db.funcByName[x.Name] = fi
		}
	case *ast.ExprStmt:
		ex.expr(x.X)
	case *ast.ReturnStmt:
		var v int = -1
		if x.Value != nil {
			v = ex.expr(x.Value)
		}
		ret := ex.emitAt(OpReturn, "", x)
		if v >= 0 {
			ex.db.Instrs[ret].Args = []int{v}
			if len(ex.fnStack) > 0 {
				fi := ex.fnStack[len(ex.fnStack)-1]
				ex.db.Funcs[fi].Returns = append(ex.db.Funcs[fi].Returns, v)
			}
		}
	case *ast.IfStmt:
		ex.expr(x.Cond)
		ex.stmt(x.Then)
		if x.Else != nil {
			ex.stmt(x.Else)
		}
	case *ast.BlockStmt:
		ex.stmts(x.Body)
	case *ast.ForStmt:
		if x.Init != nil {
			ex.stmt(x.Init)
		}
		if x.Cond != nil {
			ex.expr(x.Cond)
		}
		if x.Post != nil {
			ex.expr(x.Post)
		}
		ex.stmt(x.Body)
	case *ast.ForInStmt:
		obj := ex.expr(x.Object)
		// loop variable receives a projection of the object
		item := ex.emitAt(OpPhi, "iter", x, obj)
		st := ex.emitAt(OpStore, ex.scoped(x.Name), x, item)
		ex.db.varDefs[ex.scoped(x.Name)] = append(ex.db.varDefs[ex.scoped(x.Name)], st)
		ex.stmt(x.Body)
	case *ast.WhileStmt:
		ex.expr(x.Cond)
		ex.stmt(x.Body)
	case *ast.DoWhileStmt:
		ex.stmt(x.Body)
		ex.expr(x.Cond)
	case *ast.ThrowStmt:
		ex.expr(x.Value)
	case *ast.TryStmt:
		ex.stmts(x.Body.Body)
		if x.Catch != nil {
			ex.stmts(x.Catch.Body)
		}
		if x.Finally != nil {
			ex.stmts(x.Finally.Body)
		}
	case *ast.SwitchStmt:
		ex.expr(x.Disc)
		for _, c := range x.Cases {
			if c.Test != nil {
				ex.expr(c.Test)
			}
			ex.stmts(c.Body)
		}
	case *ast.ClassDecl:
		for _, m := range x.Methods {
			fi := ex.function(m.Fn, x.Name+"."+m.Name)
			ex.db.protoMethods[x.Name+"."+m.Name] = fi
		}
		cls := ex.emitAt(OpConst, "class:"+x.Name, x)
		st := ex.emitAt(OpStore, ex.scoped(x.Name), x, cls)
		ex.db.varDefs[ex.scoped(x.Name)] = append(ex.db.varDefs[ex.scoped(x.Name)], st)
	}
}

func (ex *extractor) scopeDepth() int { return len(ex.fnStack) }

func (ex *extractor) function(fn *ast.FuncLit, name string) int {
	fi := len(ex.db.Funcs)
	ex.db.Funcs = append(ex.db.Funcs, FuncIR{Index: fi, Name: name, Decl: fn, File: ex.file})
	prevScope := ex.scope
	ex.scope = fmt.Sprintf("%s#%d::", ex.file, fi)
	ex.fnStack = append(ex.fnStack, fi)
	entry := len(ex.db.Instrs)
	for i, p := range fn.Params {
		pid := ex.emitAt(OpParam, p.Name, p)
		ex.db.Instrs[pid].Fn = i
		ex.db.Funcs[fi].Params = append(ex.db.Funcs[fi].Params, pid)
		st := ex.emitAt(OpStore, ex.scoped(p.Name), p, pid)
		ex.db.varDefs[ex.scoped(p.Name)] = append(ex.db.varDefs[ex.scoped(p.Name)], st)
	}
	if fn.Body != nil {
		ex.stmts(fn.Body.Body)
	} else if fn.ExprRet != nil {
		v := ex.expr(fn.ExprRet)
		ex.db.Funcs[fi].Returns = append(ex.db.Funcs[fi].Returns, v)
	}
	ex.db.Funcs[fi].Entry = entry
	ex.fnStack = ex.fnStack[:len(ex.fnStack)-1]
	ex.scope = prevScope
	return fi
}

func (ex *extractor) expr(e ast.Expr) int {
	switch x := e.(type) {
	case nil:
		return ex.emit(OpConst, "undefined")
	case *ast.Ident:
		ld := ex.emitAt(OpLoad, "", x)
		// resolve through enclosing scopes: function scope then module
		ex.db.Instrs[ld].Name = ex.resolveVar(x.Name)
		return ld
	case *ast.NumberLit:
		return ex.emitAt(OpConst, "number", x)
	case *ast.StringLit:
		id := ex.emitAt(OpConst, "string", x)
		ex.db.Instrs[id].Str = x.Value
		return id
	case *ast.BoolLit, *ast.NullLit, *ast.UndefinedLit:
		return ex.emitAt(OpConst, "literal", x)
	case *ast.ThisExpr:
		return ex.emitAt(OpLoad, ex.scoped("this"), x)
	case *ast.TemplateLit:
		var args []int
		for _, sub := range x.Exprs {
			args = append(args, ex.expr(sub))
		}
		return ex.emitAt(OpBinOp, "template", x, args...)
	case *ast.ArrayLit:
		var args []int
		for _, el := range x.Elems {
			args = append(args, ex.expr(el))
		}
		return ex.emitAt(OpArray, "", x, args...)
	case *ast.ObjectLit:
		var args []int
		obj := -1
		for _, p := range x.Props {
			v := ex.expr(p.Value)
			args = append(args, v)
			if !p.Spread && !p.Computed {
				// field-based property write
				if obj == -1 {
					obj = ex.emitAt(OpObject, "", x)
				}
				w := ex.emitAt(OpPropWrite, p.Key, p, obj, v)
				ex.db.propWrites[p.Key] = append(ex.db.propWrites[p.Key], w)
			}
		}
		if obj == -1 {
			obj = ex.emitAt(OpObject, "", x, args...)
		} else {
			ex.db.Instrs[obj].Args = args
		}
		return obj
	case *ast.FuncLit:
		fi := ex.function(x, x.Name)
		fn := ex.emitAt(OpFunc, x.Name, x)
		ex.db.Instrs[fn].Fn = fi
		return fn
	case *ast.CallExpr:
		var args []int
		callee := -1
		calleeName := ""
		if mem, ok := x.Callee.(*ast.MemberExpr); ok && !mem.Computed {
			callee = ex.expr(mem.Object)
			calleeName = mem.Property
		} else {
			callee = ex.expr(x.Callee)
			if id, ok := x.Callee.(*ast.Ident); ok {
				calleeName = id.Name
			}
		}
		args = append(args, callee)
		for _, a := range x.Args {
			if sp, ok := a.(*ast.SpreadExpr); ok {
				args = append(args, ex.expr(sp.X))
				continue
			}
			args = append(args, ex.expr(a))
		}
		return ex.emitAt(OpCall, calleeName, x, args...)
	case *ast.NewExpr:
		var args []int
		name := ""
		switch c := x.Callee.(type) {
		case *ast.Ident:
			name = c.Name
		case *ast.MemberExpr:
			args = append(args, ex.expr(c.Object))
			name = c.Property
		default:
			args = append(args, ex.expr(x.Callee))
		}
		for _, a := range x.Args {
			args = append(args, ex.expr(a))
		}
		return ex.emitAt(OpNew, name, x, args...)
	case *ast.MemberExpr:
		obj := ex.expr(x.Object)
		if x.Computed {
			idx := ex.expr(x.Index)
			return ex.emitAt(OpPropRead, "$computed", x, obj, idx)
		}
		rd := ex.emitAt(OpPropRead, x.Property, x, obj)
		ex.db.propReads[x.Property] = append(ex.db.propReads[x.Property], rd)
		return rd
	case *ast.BinaryExpr:
		l := ex.expr(x.Left)
		r := ex.expr(x.Right)
		return ex.emitAt(OpBinOp, x.Op, x, l, r)
	case *ast.LogicalExpr:
		l := ex.expr(x.Left)
		r := ex.expr(x.Right)
		return ex.emitAt(OpPhi, x.Op, x, l, r)
	case *ast.UnaryExpr:
		v := ex.expr(x.X)
		return ex.emitAt(OpBinOp, x.Op, x, v)
	case *ast.UpdateExpr:
		return ex.expr(x.X)
	case *ast.AssignExpr:
		v := ex.expr(x.Value)
		switch t := x.Target.(type) {
		case *ast.Ident:
			name := ex.resolveVar(t.Name)
			st := ex.emitAt(OpStore, name, x, v)
			ex.db.varDefs[name] = append(ex.db.varDefs[name], st)
		case *ast.MemberExpr:
			obj := ex.expr(t.Object)
			prop := t.Property
			if t.Computed {
				ex.expr(t.Index)
				prop = "$computed"
			}
			w := ex.emitAt(OpPropWrite, prop, x, obj, v)
			ex.db.propWrites[prop] = append(ex.db.propWrites[prop], w)
			// prototype-method table: F.prototype.m = function
			if pm, ok := t.Object.(*ast.MemberExpr); ok && !pm.Computed && pm.Property == "prototype" {
				if ctor, ok := pm.Object.(*ast.Ident); ok && !t.Computed {
					if fl, ok := x.Value.(*ast.FuncLit); ok {
						fi := ex.lookupFuncIR(fl)
						if fi >= 0 {
							ex.db.protoMethods[ctor.Name+"."+t.Property] = fi
							// qualify the method's name so `this` inside it
							// resolves to the constructor's instance type
							ex.db.Funcs[fi].Name = ctor.Name + "." + t.Property
						}
					}
				}
			}
			// constructor field table: this.x = expr inside function F
			if _, isThis := t.Object.(*ast.ThisExpr); isThis && len(ex.fnStack) > 0 {
				fi := ex.fnStack[len(ex.fnStack)-1]
				key := ex.db.Funcs[fi].Name + "." + prop
				ex.db.ctorFields[key] = append(ex.db.ctorFields[key], v)
			}
		}
		return v
	case *ast.CondExpr:
		ex.expr(x.Cond)
		t := ex.expr(x.Then)
		f := ex.expr(x.Else)
		return ex.emitAt(OpPhi, "?:", x, t, f)
	case *ast.SeqExpr:
		last := -1
		for _, sub := range x.Exprs {
			last = ex.expr(sub)
		}
		return last
	case *ast.SpreadExpr:
		return ex.expr(x.X)
	case *ast.AwaitExpr:
		return ex.expr(x.X)
	}
	return ex.emit(OpConst, "unknown")
}

// lookupFuncIR finds the FuncIR index for a just-extracted literal.
func (ex *extractor) lookupFuncIR(fl *ast.FuncLit) int {
	for i := len(ex.db.Funcs) - 1; i >= 0; i-- {
		if ex.db.Funcs[i].Decl == fl {
			return i
		}
	}
	return -1
}

// resolveVar maps a bare name to the innermost scope key that defines it;
// falls back to the current scope (forward refs / implicit globals).
func (ex *extractor) resolveVar(name string) string {
	for i := len(ex.fnStack) - 1; i >= 0; i-- {
		key := fmt.Sprintf("%s#%d::%s", ex.file, ex.fnStack[i], name)
		if _, ok := ex.db.varDefs[key]; ok {
			return key
		}
	}
	modKey := ex.file + "::" + name
	if _, ok := ex.db.varDefs[modKey]; ok {
		return modKey
	}
	return ex.scoped(name)
}

// indexRelations finalizes the extracted database (second pass of the
// pipeline — CodeQL's "database finalization").
func (db *DB) indexRelations() {
	// nothing extra yet: relation maps are built during extraction; the
	// evaluator builds the flow graph. Kept as an explicit stage to mirror
	// the extract → finalize → evaluate pipeline.
}
