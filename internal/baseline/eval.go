package baseline

import (
	"sort"
	"strings"
	"time"

	"turnstile/internal/taint"
)

// Result mirrors the Turnstile analyzer's output so the harness can compare
// the two directly.
type Result struct {
	Paths    []taint.Path
	Sources  []taint.Loc
	Sinks    []taint.Loc
	Duration time.Duration
	// InstrCount reports the IR size (extraction work), for the analysis-
	// time benchmarks.
	InstrCount int
	// TupleCount reports the relational-database size.
	TupleCount int
}

// Analyze runs the full baseline pipeline: extract IR → infer local API
// types → materialize the flow relation → evaluate the taint query.
func Analyze(files []taint.File) *Result {
	start := time.Now()
	db := Extract(files)
	// database finalization: serialize everything into the relational
	// store before evaluation, as a general-purpose engine does
	rdb := Finalize(db, files)
	ev := &evaluator{db: db}
	ev.inferTypes()
	ev.buildEdges()
	ev.findEndpoints()
	ev.evaluate()
	res := &Result{
		Paths:      ev.paths,
		Duration:   time.Since(start),
		InstrCount: len(db.Instrs),
		TupleCount: rdb.TupleCount(),
	}
	res.Sources, res.Sinks = ev.endpoints()
	sort.Slice(res.Paths, func(i, j int) bool { return res.Paths[i].Key() < res.Paths[j].Key() })
	return res
}

type sourceSeed struct {
	instr int
	loc   taint.Loc
	kind  string
}

type sinkSeed struct {
	instr int // the argument value instruction feeding the sink
	loc   taint.Loc
	kind  string
}

type evaluator struct {
	db    *DB
	types []string // apiType per instruction
	edges [][]int32

	sources []sourceSeed
	sinks   []sinkSeed
	paths   []taint.Path
	seen    map[string]bool
}

func (ev *evaluator) instr(i int) *Instr { return &ev.db.Instrs[i] }

// inferTypes assigns API types to instructions with purely local (non-
// interprocedural) propagation, iterated to a fixpoint. Function parameters
// never receive a type — the baseline's central weakness (§6.1).
func (ev *evaluator) inferTypes() {
	n := len(ev.db.Instrs)
	ev.types = make([]string, n)
	changed := true
	for pass := 0; changed && pass < 12; pass++ {
		changed = false
		for i := 0; i < n; i++ {
			in := ev.instr(i)
			var t string
			switch in.Op {
			case OpCall:
				t = ev.typeOfCall(i, in)
			case OpNew:
				t = ev.typeOfNew(in)
			case OpLoad:
				// union over definitions; first wins (types don't conflict
				// in practice because each var holds one API object)
				for _, def := range ev.db.varDefs[in.Name] {
					if dt := ev.typeOfDef(def); dt != "" {
						t = dt
						break
					}
				}
				if t == "" && strings.HasSuffix(in.Name, "::this") {
					t = ev.typeOfThis(in)
				}
			case OpPropRead:
				base := ev.types[in.Args[0]]
				switch {
				case strings.HasPrefix(base, "module:"):
					t = "modfn:" + base[7:] + "." + in.Name
				case in.Name == "nodes" && ev.isREDLoad(in.Args[0]):
					// syntactic NodeRed selector: RED.nodes (Fig. 8)
					t = "rednodes"
				case strings.HasPrefix(base, "instance:"):
					// constructor field types (prototype-chain strength)
					if def := ev.db.ctorFields[base[9:]+"."+in.Name]; len(def) > 0 {
						t = ev.types[def[0]]
					}
				}
			case OpPhi:
				for _, a := range in.Args {
					if ev.types[a] != "" {
						t = ev.types[a]
						break
					}
				}
			}
			if t != "" && ev.types[i] != t {
				ev.types[i] = t
				changed = true
			}
			// type-marking side effects that must participate in the
			// fixpoint: RED.nodes.createNode typing `this`, and express
			// handler response parameters.
			if in.Op == OpCall {
				if ev.markCreateNode(in) {
					changed = true
				}
				if ev.markExpressHandlers(in) {
					changed = true
				}
			}
		}
	}
}

// isREDLoad reports whether the instruction loads a variable named RED.
func (ev *evaluator) isREDLoad(id int) bool {
	in := ev.instr(id)
	return in.Op == OpLoad && strings.HasSuffix(in.Name, "::RED")
}

// markCreateNode types every load of the enclosing `this` as a Node-RED
// node when RED.nodes.createNode(this, config) is seen.
func (ev *evaluator) markCreateNode(in *Instr) bool {
	if in.Name != "createNode" || len(in.Args) < 2 || ev.types[in.Args[0]] != "rednodes" {
		return false
	}
	ti := ev.instr(in.Args[1])
	if ti.Op != OpLoad || !strings.HasSuffix(ti.Name, "::this") {
		return false
	}
	changed := false
	for j := range ev.db.Instrs {
		lj := ev.instr(j)
		if lj.Op == OpLoad && lj.Name == ti.Name && ev.types[j] != "rednode" {
			ev.types[j] = "rednode"
			changed = true
		}
	}
	return changed
}

// markExpressHandlers types the second parameter of express/http-server
// route handlers as the response sink object.
func (ev *evaluator) markExpressHandlers(in *Instr) bool {
	if len(in.Args) == 0 {
		return false
	}
	recv := ev.types[in.Args[0]]
	isRoute := recv == "emitter:expressapp" &&
		(in.Name == "get" || in.Name == "post" || in.Name == "put" || in.Name == "use")
	isServer := in.Name == "createServer" && strings.HasPrefix(recv, "module:http")
	if !isRoute && !isServer {
		return false
	}
	fi := -1
	for i := len(in.Args) - 1; i >= 1; i-- {
		a := ev.instr(in.Args[i])
		if a.Op == OpFunc {
			fi = a.Fn
			break
		}
	}
	if fi < 0 {
		return false
	}
	fn := ev.db.Funcs[fi]
	if len(fn.Params) < 2 {
		return false
	}
	changed := false
	// find the parameter's store key, then type all its loads
	for _, def := range ev.db.Instrs {
		if def.Op == OpStore && len(def.Args) > 0 && def.Args[0] == fn.Params[1] {
			for j := range ev.db.Instrs {
				lj := ev.instr(j)
				if lj.Op == OpLoad && lj.Name == def.Name && ev.types[j] != "sink:expressres" {
					ev.types[j] = "sink:expressres"
					changed = true
				}
			}
			break
		}
	}
	return changed
}

func (ev *evaluator) typeOfDef(def int) string {
	in := ev.instr(def)
	if in.Op == OpStore && len(in.Args) > 0 {
		return ev.types[in.Args[0]]
	}
	return ""
}

// typeOfThis types `this` loads inside constructor functions whose name
// appears in the prototype-method or constructor-field tables.
func (ev *evaluator) typeOfThis(in *Instr) string {
	scope := in.Name[:len(in.Name)-len("::this")]
	// scope looks like file#N — find the function and its name
	idx := strings.LastIndex(scope, "#")
	if idx < 0 {
		return ""
	}
	var fi int
	for i := idx + 1; i < len(scope); i++ {
		fi = fi*10 + int(scope[i]-'0')
	}
	if fi < 0 || fi >= len(ev.db.Funcs) {
		return ""
	}
	name := ev.db.Funcs[fi].Name
	// constructor itself, or one of its prototype/class methods
	base := name
	if dot := strings.Index(name, "."); dot >= 0 {
		base = name[:dot]
	}
	for key := range ev.db.protoMethods {
		if strings.HasPrefix(key, base+".") {
			return "instance:" + base
		}
	}
	for key := range ev.db.ctorFields {
		if strings.HasPrefix(key, base+".") {
			return "instance:" + base
		}
	}
	return ""
}

func (ev *evaluator) typeOfCall(i int, in *Instr) string {
	if in.Name == "require" && len(in.Args) >= 2 {
		arg := ev.instr(in.Args[1])
		if arg.Op == OpConst && arg.Name == "string" {
			switch arg.Str {
			case "fs", "net", "http", "https", "mqtt", "nodemailer", "sqlite3", "child_process":
				name := arg.Str
				if name == "https" {
					name = "http"
				}
				return "module:" + name
			case "express":
				return "modfn:express.factory"
			}
		}
		return ""
	}
	if len(in.Args) == 0 {
		return ""
	}
	recv := ev.types[in.Args[0]]
	full := ""
	switch {
	case strings.HasPrefix(recv, "module:"):
		full = recv[7:] + "." + in.Name
	case strings.HasPrefix(recv, "modfn:"):
		// direct call of a function value extracted from a module
		full = recv[6:]
	}
	switch full {
	case "fs.createReadStream":
		return "emitter:stream"
	case "fs.createWriteStream":
		return "sink:wstream"
	case "net.connect", "net.createConnection":
		return "emitter:socket"
	case "net.createServer", "http.createServer":
		return "emitter:server"
	case "http.request":
		return "sink:httpreq"
	case "mqtt.connect":
		return "emitter:mqtt"
	case "nodemailer.createTransport":
		return "sink:transport"
	case "sqlite3.verbose":
		return "module:sqlite3"
	case "express.factory":
		return "emitter:expressapp"
	}
	// chained registration keeps the receiver's type: sock.on(...).on(...)
	if in.Name == "on" || in.Name == "once" || in.Name == "subscribe" || in.Name == "listen" || in.Name == "setEncoding" {
		return recv
	}
	return ""
}

func (ev *evaluator) typeOfNew(in *Instr) string {
	if in.Name == "Database" && len(in.Args) > 0 && ev.types[in.Args[0]] == "module:sqlite3" {
		return "sink:db"
	}
	if _, ok := ev.db.funcByName[in.Name]; ok {
		return "instance:" + in.Name
	}
	for key := range ev.db.protoMethods {
		if strings.HasPrefix(key, in.Name+".") {
			return "instance:" + in.Name
		}
	}
	return ""
}

// taintSteps are the standard-library methods through which CodeQL-style
// taint tracking steps from receiver/arguments to the result.
var taintSteps = map[string]bool{
	"toUpperCase": true, "toLowerCase": true, "split": true, "join": true,
	"slice": true, "substring": true, "substr": true, "trim": true,
	"replace": true, "replaceAll": true, "concat": true, "toString": true,
	"map": true, "filter": true, "flat": true, "sort": true, "reverse": true,
	"stringify": true, "parse": true, "charAt": true, "padStart": true,
	"repeat": true, "pop": true, "shift": true,
}

// buildEdges materializes the value-flow relation.
func (ev *evaluator) buildEdges() {
	n := len(ev.db.Instrs)
	ev.edges = make([][]int32, n)
	add := func(from, to int) {
		if from >= 0 && to >= 0 && from < n && to < n {
			ev.edges[from] = append(ev.edges[from], int32(to))
		}
	}
	for i := 0; i < n; i++ {
		in := ev.instr(i)
		switch in.Op {
		case OpStore:
			for _, a := range in.Args {
				add(a, i)
			}
		case OpLoad:
			for _, def := range ev.db.varDefs[in.Name] {
				add(def, i)
			}
		case OpPropWrite:
			// value flows into the write and into the base object
			if len(in.Args) >= 2 {
				add(in.Args[1], i)
				add(in.Args[1], in.Args[0])
			}
			// field-based: this write reaches every read of the same name
			for _, rd := range ev.db.propReads[in.Name] {
				add(i, rd)
			}
		case OpPropRead:
			// taint steps through property reads of tainted objects
			add(in.Args[0], i)
		case OpBinOp, OpPhi, OpArray, OpObject:
			for _, a := range in.Args {
				add(a, i)
			}
		case OpNew:
			for _, a := range in.Args {
				add(a, i)
			}
			// instance method resolution through the prototype table:
			// tainted ctor args flow into the constructor's params
			if fi, ok := ev.db.funcByName[in.Name]; ok {
				ev.linkCall(in.Args, ev.db.Funcs[fi], i, add)
			}
		case OpCall:
			ev.linkCallEdges(i, in, add)
		}
	}
}

// linkCallEdges adds interprocedural edges for syntactically resolvable
// calls and library taint steps.
func (ev *evaluator) linkCallEdges(i int, in *Instr, add func(int, int)) {
	// direct call of a top-level function: f(x)
	if fi, ok := ev.db.funcByName[in.Name]; ok && len(in.Args) > 0 {
		callee := ev.instr(in.Args[0])
		if callee.Op == OpLoad && strings.HasSuffix(callee.Name, "::"+in.Name) {
			ev.linkCall(in.Args, ev.db.Funcs[fi], i, add)
			return
		}
	}
	// instance method call through the prototype table: x.m(...) where
	// x : instance:F and F.m is registered
	if len(in.Args) > 0 {
		recv := ev.types[in.Args[0]]
		if strings.HasPrefix(recv, "instance:") {
			if fi, ok := ev.db.protoMethods[recv[9:]+"."+in.Name]; ok {
				ev.linkCall(in.Args, ev.db.Funcs[fi], i, add)
				return
			}
		}
	}
	// standard-library taint steps
	if taintSteps[in.Name] {
		for _, a := range in.Args {
			add(a, i)
		}
	}
}

// linkCall wires args[1:] to callee params and returns to the call result.
func (ev *evaluator) linkCall(args []int, fn FuncIR, callInstr int, add func(int, int)) {
	for pi, param := range fn.Params {
		if pi+1 < len(args) {
			add(args[pi+1], param)
		}
	}
	for _, ret := range fn.Returns {
		add(ret, callInstr)
	}
}

// findEndpoints applies the source/sink selectors (the custom CodeQL
// classes of Figs. 8 and 9) to the typed IR.
func (ev *evaluator) findEndpoints() {
	ev.seen = map[string]bool{}
	for i := range ev.db.Instrs {
		in := ev.instr(i)
		if in.Op != OpCall {
			continue
		}
		loc := taint.Loc{File: in.File, Pos: in.Pos}
		recvType := ""
		if len(in.Args) > 0 {
			recvType = ev.types[in.Args[0]]
		}
		// --- IOSource-style selectors: callback params of I/O events
		if in.Name == "on" || in.Name == "once" {
			event := ev.constStr(in, 1)
			cb := ev.callbackArg(in, 2)
			if cb >= 0 {
				kind := ""
				switch {
				case recvType == "emitter:stream" && event == "data":
					kind = "fs.stream.on(data)"
				case recvType == "emitter:socket" && event == "data":
					kind = "net.socket.on(data)"
				case recvType == "emitter:mqtt" && event == "message":
					kind = "mqtt.on(message)"
				case recvType == "rednode" && event == "input":
					kind = "nodered.input"
				}
				if kind != "" {
					ev.seedCallbackParams(cb, loc, kind, 0)
				}
			}
		}
		switch {
		case recvType == "modfn:fs.readFile" || (strings.HasPrefix(recvType, "module:fs") && in.Name == "readFile"):
			if cb := ev.lastCallback(in); cb >= 0 {
				ev.seedCallbackParams(cb, loc, "fs.readFile(cb)", 1)
			}
		case strings.HasPrefix(recvType, "module:child_process") && (in.Name == "exec" || in.Name == "execFile"):
			if cb := ev.lastCallback(in); cb >= 0 {
				ev.seedCallbackParams(cb, loc, "child_process.exec(cb)", 1)
			}
		case recvType == "sink:db" && (in.Name == "all" || in.Name == "get" || in.Name == "each"):
			if cb := ev.lastCallback(in); cb >= 0 {
				ev.seedCallbackParams(cb, loc, "sqlite."+in.Name+"(rows)", 1)
			}
		case recvType == "emitter:expressapp" && (in.Name == "get" || in.Name == "post" || in.Name == "put" || in.Name == "use"):
			if cb := ev.lastCallback(in); cb >= 0 {
				ev.seedCallbackParams(cb, loc, "express."+in.Name, 0)
			}
		case strings.HasPrefix(recvType, "module:fs") && in.Name == "readFileSync":
			ev.sources = append(ev.sources, sourceSeed{instr: i, loc: loc, kind: "fs.readFileSync"})
		}
		// --- IOSink-style selectors
		sinkKind := ""
		dataArgs := in.Args[1:]
		switch {
		case (recvType == "emitter:socket" || recvType == "sink:wstream") && (in.Name == "write" || in.Name == "end"):
			sinkKind = "stream.write"
		case recvType == "sink:httpreq" && (in.Name == "write" || in.Name == "end"):
			sinkKind = "http.request.write"
		case recvType == "emitter:mqtt" && in.Name == "publish":
			sinkKind = "mqtt.publish"
			if len(dataArgs) > 1 {
				dataArgs = dataArgs[1:]
			}
		case recvType == "sink:transport" && in.Name == "sendMail":
			sinkKind = "smtp.sendMail"
		case recvType == "sink:db" && in.Name == "run":
			sinkKind = "sqlite.run"
			if len(dataArgs) > 1 {
				dataArgs = dataArgs[1:]
			}
		case recvType == "rednode" && in.Name == "send":
			sinkKind = "nodered.send"
		case recvType == "sink:expressres" && (in.Name == "send" || in.Name == "json" || in.Name == "end"):
			sinkKind = "http.response." + in.Name
		case strings.HasPrefix(recvType, "module:fs") && (in.Name == "writeFile" || in.Name == "writeFileSync" || in.Name == "appendFileSync" || in.Name == "appendFile"):
			sinkKind = "fs." + in.Name
		}
		if sinkKind != "" {
			for _, arg := range dataArgs {
				ev.sinks = append(ev.sinks, sinkSeed{instr: arg, loc: loc, kind: sinkKind})
			}
		}
	}
}

func (ev *evaluator) constStr(in *Instr, argIdx int) string {
	if argIdx < len(in.Args) {
		a := ev.instr(in.Args[argIdx])
		if a.Op == OpConst && a.Name == "string" {
			return a.Str
		}
	}
	return ""
}

func (ev *evaluator) callbackArg(in *Instr, argIdx int) int {
	if argIdx < len(in.Args) {
		a := ev.instr(in.Args[argIdx])
		if a.Op == OpFunc {
			return a.Fn
		}
	}
	return -1
}

func (ev *evaluator) lastCallback(in *Instr) int {
	for i := len(in.Args) - 1; i >= 1; i-- {
		a := ev.instr(in.Args[i])
		if a.Op == OpFunc {
			return a.Fn
		}
	}
	return -1
}

// seedCallbackParams marks callback parameters from firstData onward as
// taint sources.
func (ev *evaluator) seedCallbackParams(fi int, loc taint.Loc, kind string, firstData int) {
	fn := ev.db.Funcs[fi]
	for pi, param := range fn.Params {
		if pi >= firstData {
			ev.sources = append(ev.sources, sourceSeed{instr: param, loc: loc, kind: kind})
		}
	}
}

// evaluate materializes the full flowsTo relation the way a naive Datalog
// engine evaluates an unrestricted path query — dense transitive closure
// over the value-flow graph, iterated to a fixpoint — and then intersects
// it with the source/sink seeds. Materializing the whole relation instead
// of exploring only from the query's sources is the general-purpose
// engine's dominant cost and the reason the baseline is an order of
// magnitude slower than Turnstile's specialized analysis (§6.1).
func (ev *evaluator) evaluate() {
	n := len(ev.db.Instrs)
	sinkAt := make(map[int][]sinkSeed)
	for _, s := range ev.sinks {
		sinkAt[s.instr] = append(sinkAt[s.instr], s)
	}
	words := (n + 63) / 64
	// reach[i*words : (i+1)*words] is the bitset of nodes reachable from i.
	reach := make([]uint64, n*words)
	row := func(i int) []uint64 { return reach[i*words : (i+1)*words] }
	setBit := func(r []uint64, v int) bool {
		w, b := v/64, uint(v%64)
		if r[w]&(1<<b) != 0 {
			return false
		}
		r[w] |= 1 << b
		return true
	}
	for u := 0; u < n; u++ {
		r := row(u)
		for _, v := range ev.edges[u] {
			setBit(r, int(v))
		}
	}
	// semi-naive sweeps: row(u) |= row(v) for every edge u→v until stable.
	for pass := 0; pass < 64; pass++ {
		changed := false
		for u := n - 1; u >= 0; u-- {
			r := row(u)
			for _, v := range ev.edges[u] {
				rv := row(int(v))
				for w := range r {
					if nv := r[w] | rv[w]; nv != r[w] {
						r[w] = nv
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, src := range ev.sources {
		r := row(src.instr)
		for sinkInstr, seeds := range sinkAt {
			if sinkInstr == src.instr || r[sinkInstr/64]&(1<<uint(sinkInstr%64)) != 0 {
				for _, snk := range seeds {
					p := taint.Path{
						Source:     src.loc,
						SourceKind: src.kind,
						Sink:       snk.loc,
						SinkKind:   snk.kind,
					}
					if !ev.seen[p.Key()] {
						ev.seen[p.Key()] = true
						ev.paths = append(ev.paths, p)
					}
				}
			}
		}
	}
}

func (ev *evaluator) endpoints() (sources, sinks []taint.Loc) {
	seenS := map[string]bool{}
	for _, s := range ev.sources {
		if !seenS[s.loc.String()] {
			seenS[s.loc.String()] = true
			sources = append(sources, s.loc)
		}
	}
	seenK := map[string]bool{}
	for _, s := range ev.sinks {
		if !seenK[s.loc.String()] {
			seenK[s.loc.String()] = true
			sinks = append(sinks, s.loc)
		}
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i].String() < sources[j].String() })
	sort.Slice(sinks, func(i, j int) bool { return sinks[i].String() < sinks[j].String() })
	return sources, sinks
}
