package printer

import (
	"errors"
	"strings"
	"testing"

	"turnstile/internal/ast"
	"turnstile/internal/guard"
)

// deepUnary builds !!!…!x as an AST directly (the parser's own depth cap
// is lower, so a tree this deep can only come from programmatic
// construction — e.g. a buggy instrumentation pass).
func deepUnary(n int) ast.Expr {
	var e ast.Expr = &ast.Ident{Name: "x"}
	for i := 0; i < n; i++ {
		e = &ast.UnaryExpr{Op: "!", X: e}
	}
	return e
}

func TestSafePrintDepthLimit(t *testing.T) {
	prog := &ast.Program{Body: []ast.Stmt{
		&ast.ExprStmt{X: deepUnary(maxPrintDepth + 10)},
	}}
	_, err := SafePrint(prog)
	if err == nil {
		t.Fatal("over-deep AST printed")
	}
	var pe *guard.PipelineError
	if !errors.As(err, &pe) || pe.Stage != "print" {
		t.Fatalf("expected print PipelineError, got %T: %v", err, err)
	}
}

func TestSafePrintHappyPath(t *testing.T) {
	prog := &ast.Program{Body: []ast.Stmt{
		&ast.ExprStmt{X: deepUnary(64)},
	}}
	out, err := SafePrint(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "!x") {
		t.Fatalf("unexpected output: %q", out)
	}
}

// TestSafePrintDepthResets: the walk counter is per-run; printing many
// shallow statements never accumulates depth.
func TestSafePrintDepthResets(t *testing.T) {
	body := make([]ast.Stmt, maxPrintDepth/100)
	for i := range body {
		body[i] = &ast.ExprStmt{X: deepUnary(200)}
	}
	if _, err := SafePrint(&ast.Program{Body: body}); err != nil {
		t.Fatalf("shallow statements tripped the walk bound: %v", err)
	}
}
