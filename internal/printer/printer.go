// Package printer renders MiniJS ASTs back to source text.
//
// The Code Instrumentor (§4.3 of the paper) rewrites application ASTs and
// relies on this package to produce the privacy-managed source that is
// deployed in place of the original. Output is deterministic and re-parses
// to an equivalent tree; expressions are parenthesized conservatively where
// precedence could otherwise change.
package printer

import (
	"fmt"
	"strconv"
	"strings"

	"turnstile/internal/ast"
	"turnstile/internal/guard"
	"turnstile/internal/lexer"
)

// maxPrintDepth bounds AST nesting during the walk. It is far above the
// parser's maxParseDepth because instrumentation wraps nodes in extra call
// layers, but still low enough that the walk cannot overflow the Go stack
// (which recover cannot catch).
const maxPrintDepth = 100_000

// printAbort is the panic sentinel carrying the depth-limit error out of
// the recursive walk; SafePrint recovers it.
type printAbort struct{ err *guard.PipelineError }

// Print renders a program as source text. On ASTs nested beyond
// maxPrintDepth it panics with a sentinel that SafePrint converts to a
// typed error; callers printing untrusted (e.g. fuzzer-built) trees should
// use SafePrint.
func Print(prog *ast.Program) string {
	p := &printer{}
	for _, s := range prog.Body {
		p.stmt(s, 0)
	}
	return p.b.String()
}

// SafePrint is Print with the depth limit surfaced as a *guard.PipelineError
// instead of a panic.
func SafePrint(prog *ast.Program) (out string, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pa, ok := r.(printAbort); ok {
				out, err = "", pa.err
				return
			}
			panic(r)
		}
	}()
	return Print(prog), nil
}

// PrintExpr renders a single expression.
func PrintExpr(e ast.Expr) string {
	p := &printer{}
	p.expr(e, 0)
	return p.b.String()
}

// PrintStmt renders a single statement at the given indent level.
func PrintStmt(s ast.Stmt) string {
	p := &printer{}
	p.stmt(s, 0)
	return p.b.String()
}

type printer struct {
	b     strings.Builder
	depth int
}

func (p *printer) ws(indent int) { p.b.WriteString(strings.Repeat("  ", indent)) }

// enter charges one AST nesting level; leave releases it.
func (p *printer) enter() {
	p.depth++
	if p.depth > maxPrintDepth {
		panic(printAbort{&guard.PipelineError{
			Stage: "print",
			Cause: fmt.Errorf("AST nesting exceeds %d levels", maxPrintDepth),
		}})
	}
}

func (p *printer) leave() { p.depth-- }

func (p *printer) stmt(s ast.Stmt, indent int) {
	p.enter()
	defer p.leave()
	switch x := s.(type) {
	case *ast.VarDecl:
		p.ws(indent)
		p.varDeclHead(x)
		p.b.WriteString(";\n")
	case *ast.FuncDecl:
		p.ws(indent)
		p.funcLit(x.Fn, indent, x.Name)
		p.b.WriteString("\n")
	case *ast.ExprStmt:
		p.ws(indent)
		// Statements whose leftmost token would be '{' or 'function' are
		// ambiguous at statement position; wrap them in parens.
		if startsAmbiguously(x.X) {
			p.b.WriteString("(")
			p.expr(x.X, 0)
			p.b.WriteString(")")
		} else {
			p.expr(x.X, 0)
		}
		p.b.WriteString(";\n")
	case *ast.ReturnStmt:
		p.ws(indent)
		p.b.WriteString("return")
		if x.Value != nil {
			p.b.WriteString(" ")
			p.expr(x.Value, 0)
		}
		p.b.WriteString(";\n")
	case *ast.IfStmt:
		p.ws(indent)
		p.ifChain(x, indent)
	case *ast.ForStmt:
		p.ws(indent)
		p.b.WriteString("for (")
		switch init := x.Init.(type) {
		case *ast.VarDecl:
			p.varDeclHead(init)
		case *ast.ExprStmt:
			p.expr(init.X, 0)
		}
		p.b.WriteString("; ")
		if x.Cond != nil {
			p.expr(x.Cond, 0)
		}
		p.b.WriteString("; ")
		if x.Post != nil {
			p.expr(x.Post, 0)
		}
		p.b.WriteString(") ")
		p.nestedBody(x.Body, indent)
	case *ast.ForInStmt:
		p.ws(indent)
		p.b.WriteString("for (")
		if x.Decl {
			p.b.WriteString(x.DeclKind.String())
			p.b.WriteString(" ")
		}
		p.b.WriteString(x.Name)
		if x.Kind == ast.ForIn {
			p.b.WriteString(" in ")
		} else {
			p.b.WriteString(" of ")
		}
		p.expr(x.Object, 0)
		p.b.WriteString(") ")
		p.nestedBody(x.Body, indent)
	case *ast.WhileStmt:
		p.ws(indent)
		p.b.WriteString("while (")
		p.expr(x.Cond, 0)
		p.b.WriteString(") ")
		p.nestedBody(x.Body, indent)
	case *ast.DoWhileStmt:
		p.ws(indent)
		p.b.WriteString("do ")
		p.nestedBodyNoNL(x.Body, indent)
		p.b.WriteString(" while (")
		p.expr(x.Cond, 0)
		p.b.WriteString(");\n")
	case *ast.BlockStmt:
		p.ws(indent)
		p.block(x, indent)
		p.b.WriteString("\n")
	case *ast.BreakStmt:
		p.ws(indent)
		p.b.WriteString("break;\n")
	case *ast.ContinueStmt:
		p.ws(indent)
		p.b.WriteString("continue;\n")
	case *ast.ThrowStmt:
		p.ws(indent)
		p.b.WriteString("throw ")
		p.expr(x.Value, 0)
		p.b.WriteString(";\n")
	case *ast.TryStmt:
		p.ws(indent)
		p.b.WriteString("try ")
		p.block(x.Body, indent)
		if x.Catch != nil {
			p.b.WriteString(" catch ")
			if x.CatchVar != "" {
				fmt.Fprintf(&p.b, "(%s) ", x.CatchVar)
			}
			p.block(x.Catch, indent)
		}
		if x.Finally != nil {
			p.b.WriteString(" finally ")
			p.block(x.Finally, indent)
		}
		p.b.WriteString("\n")
	case *ast.SwitchStmt:
		p.ws(indent)
		p.b.WriteString("switch (")
		p.expr(x.Disc, 0)
		p.b.WriteString(") {\n")
		for _, c := range x.Cases {
			p.ws(indent + 1)
			if c.Test != nil {
				p.b.WriteString("case ")
				p.expr(c.Test, 0)
				p.b.WriteString(":\n")
			} else {
				p.b.WriteString("default:\n")
			}
			for _, s := range c.Body {
				p.stmt(s, indent+2)
			}
		}
		p.ws(indent)
		p.b.WriteString("}\n")
	case *ast.ClassDecl:
		p.ws(indent)
		p.b.WriteString("class ")
		p.b.WriteString(x.Name)
		if x.SuperClass != nil {
			p.b.WriteString(" extends ")
			p.expr(x.SuperClass, 0)
		}
		p.b.WriteString(" {\n")
		for _, m := range x.Methods {
			p.ws(indent + 1)
			if m.Static {
				p.b.WriteString("static ")
			}
			if m.Fn.Async {
				p.b.WriteString("async ")
			}
			if isIdentKey(m.Name) || lexer.IsKeyword(m.Name) {
				p.b.WriteString(m.Name)
			} else {
				p.b.WriteString(quoteJS(m.Name))
			}
			p.params(m.Fn.Params)
			p.b.WriteString(" ")
			p.block(m.Fn.Body, indent+1)
			p.b.WriteString("\n")
		}
		p.ws(indent)
		p.b.WriteString("}\n")
	case *ast.EmptyStmt:
		p.ws(indent)
		p.b.WriteString(";\n")
	default:
		panic(fmt.Sprintf("printer: unknown statement %T", s))
	}
}

// ifChain prints if/else-if chains without re-indenting each else-if.
func (p *printer) ifChain(x *ast.IfStmt, indent int) {
	p.b.WriteString("if (")
	p.expr(x.Cond, 0)
	p.b.WriteString(") ")
	p.nestedBodyNoNL(x.Then, indent)
	if x.Else != nil {
		p.b.WriteString(" else ")
		if ei, ok := x.Else.(*ast.IfStmt); ok {
			p.ifChain(ei, indent)
			return
		}
		p.nestedBodyNoNL(x.Else, indent)
	}
	p.b.WriteString("\n")
}

// nestedBody prints a loop/conditional body followed by a newline.
func (p *printer) nestedBody(s ast.Stmt, indent int) {
	p.nestedBodyNoNL(s, indent)
	p.b.WriteString("\n")
}

func (p *printer) nestedBodyNoNL(s ast.Stmt, indent int) {
	if blk, ok := s.(*ast.BlockStmt); ok {
		p.block(blk, indent)
		return
	}
	// single-statement body: wrap in a block for output robustness
	p.b.WriteString("{\n")
	p.stmt(s, indent+1)
	p.ws(indent)
	p.b.WriteString("}")
}

func (p *printer) block(blk *ast.BlockStmt, indent int) {
	p.b.WriteString("{\n")
	for _, s := range blk.Body {
		p.stmt(s, indent+1)
	}
	p.ws(indent)
	p.b.WriteString("}")
}

func (p *printer) varDeclHead(vd *ast.VarDecl) {
	p.b.WriteString(vd.Kind.String())
	p.b.WriteString(" ")
	for i, d := range vd.Decls {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.b.WriteString(d.Name)
		if d.Init != nil {
			p.b.WriteString(" = ")
			p.expr(d.Init, precAssign)
		}
	}
}

func (p *printer) params(params []*ast.Param) {
	p.b.WriteString("(")
	for i, pa := range params {
		if i > 0 {
			p.b.WriteString(", ")
		}
		if pa.Rest {
			p.b.WriteString("...")
		}
		p.b.WriteString(pa.Name)
	}
	p.b.WriteString(")")
}

func (p *printer) funcLit(fn *ast.FuncLit, indent int, name string) {
	if fn.Arrow {
		if fn.Async {
			p.b.WriteString("async ")
		}
		p.params(fn.Params)
		p.b.WriteString(" => ")
		if fn.Body != nil {
			p.block(fn.Body, indent)
		} else {
			// object-literal expression bodies need parens
			if _, isObj := fn.ExprRet.(*ast.ObjectLit); isObj {
				p.b.WriteString("(")
				p.expr(fn.ExprRet, 0)
				p.b.WriteString(")")
			} else {
				p.expr(fn.ExprRet, precAssign)
			}
		}
		return
	}
	if fn.Async {
		p.b.WriteString("async ")
	}
	p.b.WriteString("function")
	// a function's printable name must be a valid identifier; shorthand
	// methods with string/numeric keys carry the raw key in Name
	if name == "" {
		name = fn.Name
	}
	if isIdentKey(name) && !lexer.IsKeyword(name) {
		p.b.WriteString(" ")
		p.b.WriteString(name)
	}
	p.params(fn.Params)
	p.b.WriteString(" ")
	p.block(fn.Body, indent)
}

// Expression precedence levels, mirroring the parser's table. An expression
// is parenthesized when its own precedence is lower than the context's.
const (
	precSeq    = 0
	precAssign = 1
	precCond   = 2
	precBinMin = 3 // binary levels occupy 3..14 (parser prec + 2)
	precUnary  = 15
	precCall   = 16
	precAtom   = 17
)

var printBinPrec = map[string]int{
	"??": 3, "||": 3, "&&": 4,
	"|": 5, "^": 6, "&": 7,
	"==": 8, "!=": 8, "===": 8, "!==": 8,
	"<": 9, ">": 9, "<=": 9, ">=": 9, "in": 9, "instanceof": 9,
	"<<": 10, ">>": 10, ">>>": 10,
	"+": 11, "-": 11,
	"*": 12, "/": 12, "%": 12,
	"**": 13,
}

func (p *printer) expr(e ast.Expr, ctx int) {
	p.enter()
	defer p.leave()
	switch x := e.(type) {
	case *ast.Ident:
		p.b.WriteString(x.Name)
	case *ast.NumberLit:
		p.b.WriteString(formatNumber(x.Value))
	case *ast.StringLit:
		p.b.WriteString(quoteJS(x.Value))
	case *ast.TemplateLit:
		p.b.WriteString("`")
		for i, q := range x.Quasis {
			p.b.WriteString(escapeTemplate(q))
			if i < len(x.Exprs) {
				p.b.WriteString("${")
				p.expr(x.Exprs[i], 0)
				p.b.WriteString("}")
			}
		}
		p.b.WriteString("`")
	case *ast.BoolLit:
		if x.Value {
			p.b.WriteString("true")
		} else {
			p.b.WriteString("false")
		}
	case *ast.NullLit:
		p.b.WriteString("null")
	case *ast.UndefinedLit:
		p.b.WriteString("undefined")
	case *ast.ThisExpr:
		p.b.WriteString("this")
	case *ast.ArrayLit:
		p.b.WriteString("[")
		for i, el := range x.Elems {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(el, precAssign)
		}
		p.b.WriteString("]")
	case *ast.ObjectLit:
		p.b.WriteString("{ ")
		for i, prop := range x.Props {
			if i > 0 {
				p.b.WriteString(", ")
			}
			switch {
			case prop.Spread:
				p.b.WriteString("...")
				p.expr(prop.Value, precAssign)
			case prop.Computed:
				p.b.WriteString("[")
				p.expr(prop.KeyExpr, 0)
				p.b.WriteString("]: ")
				p.expr(prop.Value, precAssign)
			default:
				if isIdentKey(prop.Key) {
					p.b.WriteString(prop.Key)
				} else {
					p.b.WriteString(quoteJS(prop.Key))
				}
				p.b.WriteString(": ")
				p.expr(prop.Value, precAssign)
			}
		}
		p.b.WriteString(" }")
	case *ast.FuncLit:
		// arrows sit at assignment precedence; function expressions only
		// need parens at call/member positions
		needParens := ctx >= precCall
		if x.Arrow {
			needParens = ctx > precAssign
		}
		if needParens {
			p.b.WriteString("(")
		}
		p.funcLit(x, 0, "")
		if needParens {
			p.b.WriteString(")")
		}
	case *ast.CallExpr:
		p.paren(ctx > precCall, func() {
			p.expr(x.Callee, precCall)
			p.args(x.Args)
		})
	case *ast.NewExpr:
		p.paren(ctx > precCall, func() {
			p.b.WriteString("new ")
			p.expr(x.Callee, precCall)
			p.args(x.Args)
		})
	case *ast.MemberExpr:
		p.paren(ctx > precCall, func() {
			// Number literals need parens before '.' (1.x is a parse error).
			if _, isNum := x.Object.(*ast.NumberLit); isNum {
				p.b.WriteString("(")
				p.expr(x.Object, 0)
				p.b.WriteString(")")
			} else {
				p.expr(x.Object, precCall)
			}
			if x.Computed {
				p.b.WriteString("[")
				p.expr(x.Index, 0)
				p.b.WriteString("]")
			} else {
				p.b.WriteString(".")
				p.b.WriteString(x.Property)
			}
		})
	case *ast.BinaryExpr:
		prec := printBinPrec[x.Op]
		p.paren(ctx > prec, func() {
			p.expr(x.Left, prec)
			p.b.WriteString(" " + x.Op + " ")
			p.expr(x.Right, prec+1)
		})
	case *ast.LogicalExpr:
		prec := printBinPrec[x.Op]
		p.paren(ctx > prec, func() {
			p.expr(x.Left, prec)
			p.b.WriteString(" " + x.Op + " ")
			p.expr(x.Right, prec+1)
		})
	case *ast.UnaryExpr:
		p.paren(ctx > precUnary, func() {
			p.b.WriteString(x.Op)
			if len(x.Op) > 1 {
				p.b.WriteString(" ")
			}
			p.expr(x.X, precUnary)
		})
	case *ast.UpdateExpr:
		p.paren(ctx > precUnary, func() {
			if x.Prefix {
				p.b.WriteString(x.Op)
				p.expr(x.X, precUnary)
			} else {
				p.expr(x.X, precCall)
				p.b.WriteString(x.Op)
			}
		})
	case *ast.AssignExpr:
		p.paren(ctx > precAssign, func() {
			p.expr(x.Target, precCall)
			p.b.WriteString(" " + x.Op + " ")
			p.expr(x.Value, precAssign)
		})
	case *ast.CondExpr:
		p.paren(ctx > precCond, func() {
			p.expr(x.Cond, precCond+1)
			p.b.WriteString(" ? ")
			p.expr(x.Then, precAssign)
			p.b.WriteString(" : ")
			p.expr(x.Else, precAssign)
		})
	case *ast.SeqExpr:
		p.paren(ctx > precSeq, func() {
			for i, sub := range x.Exprs {
				if i > 0 {
					p.b.WriteString(", ")
				}
				p.expr(sub, precAssign)
			}
		})
	case *ast.SpreadExpr:
		p.b.WriteString("...")
		p.expr(x.X, precAssign)
	case *ast.AwaitExpr:
		p.paren(ctx > precUnary, func() {
			p.b.WriteString("await ")
			p.expr(x.X, precUnary)
		})
	default:
		panic(fmt.Sprintf("printer: unknown expression %T", e))
	}
}

func (p *printer) paren(need bool, body func()) {
	if need {
		p.b.WriteString("(")
	}
	body()
	if need {
		p.b.WriteString(")")
	}
}

func (p *printer) args(args []ast.Expr) {
	p.b.WriteString("(")
	for i, a := range args {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.expr(a, precAssign)
	}
	p.b.WriteString(")")
}

func formatNumber(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// quoteJS quotes s as a double-quoted JS string literal.
func quoteJS(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		case 0:
			b.WriteString(`\0`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

func escapeTemplate(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "`", "\\`")
	s = strings.ReplaceAll(s, "${", "\\${")
	return s
}

// startsAmbiguously reports whether the leftmost token of e, printed at
// statement position, would be '{' or 'function' — which the parser would
// misread as a block or a declaration.
func startsAmbiguously(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ObjectLit:
			return true
		case *ast.FuncLit:
			return !x.Arrow
		case *ast.BinaryExpr:
			e = x.Left
		case *ast.LogicalExpr:
			e = x.Left
		case *ast.AssignExpr:
			e = x.Target
		case *ast.CondExpr:
			e = x.Cond
		case *ast.MemberExpr:
			e = x.Object
		case *ast.CallExpr:
			e = x.Callee
		case *ast.SeqExpr:
			if len(x.Exprs) == 0 {
				return false
			}
			e = x.Exprs[0]
		case *ast.UpdateExpr:
			if x.Prefix {
				return false
			}
			e = x.X
		default:
			return false
		}
	}
}

func isIdentKey(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && !(i > 0 && c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}
