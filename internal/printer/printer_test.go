package printer

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"turnstile/internal/ast"
	"turnstile/internal/parser"
)

// roundTrip parses src, prints it, re-parses the output, and checks that a
// second print is byte-identical (print is a fixpoint of parse∘print).
func roundTrip(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse("rt.js", src)
	if err != nil {
		t.Fatalf("parse original: %v\n%s", err, src)
	}
	out1 := Print(prog)
	prog2, err := parser.Parse("rt2.js", out1)
	if err != nil {
		t.Fatalf("re-parse printed output: %v\noutput:\n%s", err, out1)
	}
	out2 := Print(prog2)
	if out1 != out2 {
		t.Fatalf("print not idempotent:\nfirst:\n%s\nsecond:\n%s", out1, out2)
	}
	return out1
}

func TestRoundTripStatements(t *testing.T) {
	cases := []string{
		"let a = 1;",
		"const x = [1, 2, ...rest];",
		`var s = "he said \"hi\"";`,
		"function f(a, b) { return a + b; }",
		"async function g(x) { return await x; }",
		"if (a) { f(); } else if (b) { g(); } else { h(); }",
		"for (let i = 0; i < 10; i++) { use(i); }",
		"for (const k in obj) { use(k); }",
		"for (let v of items) { use(v); }",
		"while (ready()) { tick(); }",
		"do { tick(); } while (more());",
		"try { risky(); } catch (e) { log(e); } finally { done(); }",
		"switch (x) { case 1: one(); break; default: other(); }",
		"throw new Error(\"boom\");",
		"class A extends B { constructor(x) { this.x = x; } static make() { return new A(1); } }",
		"const o = { a: 1, \"b c\": 2, nested: { deep: [3] } };",
		"const fn = (a, b) => a * b;",
		"const fn2 = x => { return x + 1; };",
		"items.map(i => ({ id: i }));",
		"const t = `rate=${r}Hz, n=${n}`;",
		"a.b.c.d(1)(2)[k];",
		"x = a ? b : c;",
		"i++; --j; k **= 2;",
		"delete obj.prop;",
		"const v = typeof x;",
		"f(...args);",
		"new aws.S3Client(config).connect();",
		"break;",
		"continue;",
		";",
	}
	for _, src := range cases {
		wrapped := src
		if strings.HasPrefix(src, "break") || strings.HasPrefix(src, "continue") {
			wrapped = "while (x) { " + src + " }"
		}
		roundTrip(t, wrapped)
	}
}

func TestRoundTripPaperSnippet(t *testing.T) {
	src := `
socket.on("data", frame => {
  const scene = analyzeVideoFrame(frame);
  for (let person of scene.persons) {
    person.description = person.action + " at " + scene.location;
    if (person.employeeID) {
      deviceControl.send(person);
    }
  }
  emailSender.send(scene);
  storage.send(scene);
});`
	out := roundTrip(t, src)
	for _, want := range []string{"socket.on", "analyzeVideoFrame", "person.description", "emailSender.send"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrecedenceParens(t *testing.T) {
	cases := map[string]string{
		"x = (a + b) * c;":   "(a + b) * c",
		"x = a * (b + c);":   "a * (b + c)",
		"x = -(a + b);":      "-(a + b)",
		"x = (a, b);":        "(a, b)",
		"x = (a = b) + 1;":   "(a = b) + 1",
		"f((a, b));":         "f((a, b))",
		"x = (a ? b : c).y;": "(a ? b : c).y",
	}
	for src, want := range cases {
		out := roundTrip(t, src)
		if !strings.Contains(out, want) {
			t.Errorf("%q printed as %q, want substring %q", src, strings.TrimSpace(out), want)
		}
	}
}

func TestSemanticsPreservingParens(t *testing.T) {
	// (a+b)*c must not print as a+b*c.
	prog := parser.MustParse("t.js", "r = (1 + 2) * 3;")
	out := Print(prog)
	prog2 := parser.MustParse("t2.js", out)
	assign := prog2.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr)
	top := assign.Value.(*ast.BinaryExpr)
	if top.Op != "*" {
		t.Fatalf("reparsed top op = %q in %q", top.Op, out)
	}
}

func TestNumberFormatting(t *testing.T) {
	cases := map[string]string{
		"x = 42;":    "42",
		"x = 3.5;":   "3.5",
		"x = 0x10;":  "16",
		"x = 1e3;":   "1000",
		"x = 2.5e-3": "0.0025",
	}
	for src, want := range cases {
		out := roundTrip(t, src)
		if !strings.Contains(out, want) {
			t.Errorf("%q → %q, want %q", src, strings.TrimSpace(out), want)
		}
	}
}

func TestStringQuoting(t *testing.T) {
	prog := parser.MustParse("t.js", `x = "line1\nline2\t\"q\"";`)
	out := Print(prog)
	prog2 := parser.MustParse("t2.js", out)
	s := prog2.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr).Value.(*ast.StringLit)
	if s.Value != "line1\nline2\t\"q\"" {
		t.Fatalf("round-tripped string = %q", s.Value)
	}
}

func TestTemplateEscaping(t *testing.T) {
	src := "x = `a\\`b\\${c${v}`;"
	out := roundTrip(t, src)
	prog := parser.MustParse("t.js", out)
	tl := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr).Value.(*ast.TemplateLit)
	if tl.Quasis[0] != "a`b${c" {
		t.Fatalf("quasi = %q", tl.Quasis[0])
	}
}

func TestObjectLitAsExprStmt(t *testing.T) {
	// An expression statement that is an object literal must be wrapped.
	prog := parser.MustParse("t.js", "x = { a: 1 };")
	ol := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr).Value
	stmt := &ast.ExprStmt{NodeInfo: ast.NodeInfo{ID: 999}, X: ol}
	out := PrintStmt(stmt)
	if _, err := parser.Parse("t2.js", out); err != nil {
		t.Fatalf("printed object-literal statement does not re-parse: %q: %v", out, err)
	}
}

func TestArrowReturningObject(t *testing.T) {
	out := roundTrip(t, "const f = i => ({ id: i });")
	prog := parser.MustParse("t.js", out)
	fn := prog.Body[0].(*ast.VarDecl).Decls[0].Init.(*ast.FuncLit)
	if _, ok := fn.ExprRet.(*ast.ObjectLit); !ok {
		t.Fatalf("arrow body lost object literal: %q", out)
	}
}

func TestPrintExprStandalone(t *testing.T) {
	prog := parser.MustParse("t.js", "x = a.b(c + 1);")
	e := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr).Value
	if got := PrintExpr(e); got != "a.b(c + 1)" {
		t.Fatalf("PrintExpr = %q", got)
	}
}

// Property: randomly generated expression trees survive print→parse→print.
func TestQuickExprRoundTrip(t *testing.T) {
	gen := func(seed int64) string {
		// build a deterministic nested arithmetic/call expression
		depth := int(seed%5) + 1
		expr := "x"
		for i := 0; i < depth; i++ {
			switch seed >> (uint(i) * 3) % 4 {
			case 0:
				expr = fmt.Sprintf("(%s + v%d)", expr, i)
			case 1:
				expr = fmt.Sprintf("f%d(%s)", i, expr)
			case 2:
				expr = fmt.Sprintf("%s.m%d", expr, i)
			default:
				expr = fmt.Sprintf("(%s ? a%d : b%d)", expr, i, i)
			}
		}
		return "r = " + expr + ";"
	}
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		src := gen(seed)
		prog, err := parser.Parse("q.js", src)
		if err != nil {
			return false
		}
		out1 := Print(prog)
		prog2, err := parser.Parse("q2.js", out1)
		if err != nil {
			return false
		}
		return Print(prog2) == out1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripStatementEdges(t *testing.T) {
	cases := []string{
		"do { tick(); } while (more());",
		"switch (x) { case a + 1: f(); case 2: default: g(); }",
		"class Empty { }",
		"class M { \"quoted name\"(x) { return x; } async run() { return 1; } }",
		"try { a(); } catch { b(); }",
		"for (x of xs) { }",
		"for (k in o) { }",
		"if (a) b(); else { c(); }",
		"while (x) if (y) break; else continue;",
		"let u;",
		"x = (1, 2, 3);",
		"obj.m(...rest, last);",
		"a = b = c;",
		"x = -(-y);",
		"x = +y; x = ~y; x = void y;",
		"x = a ?? (b ?? c);",
		"fn(() => {}, function named() {});",
		"(function iife() { return 1; })();",
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestPrintNumbersPrecisely(t *testing.T) {
	cases := []string{
		"x = 0;", "x = -0.5;", "x = 123456789;", "x = 1e+21;", "x = 0.000001;",
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestPrintComputedObjectKeyAndSpread(t *testing.T) {
	out := roundTrip(t, `const o = { [k + 1]: v, ...rest, "with space": 2 };`)
	for _, want := range []string{"[k + 1]:", "...rest", `"with space": 2`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestPrintStmtAndExprHelpers(t *testing.T) {
	prog := parser.MustParse("t.js", "while (a) { b(); }")
	if got := PrintStmt(prog.Body[0]); !strings.Contains(got, "while (a)") {
		t.Fatalf("PrintStmt = %q", got)
	}
}
