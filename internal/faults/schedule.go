package faults

import (
	"encoding/json"
	"fmt"
)

// Mode selects what a matching rule does to a host operation.
type Mode string

const (
	// ModeFail makes the operation fail with a Node-style error: async ops
	// surface (err, null) callbacks, sync ops throw.
	ModeFail Mode = "fail"
	// ModeDelay advances the virtual clock by Delay ticks before the
	// operation proceeds normally (network latency, slow disk).
	ModeDelay Mode = "delay"
	// ModeDrop silently loses the operation: sink writes vanish, source
	// callbacks are never invoked, the caller observes success (a lossy
	// link, a dead letter queue).
	ModeDrop Mode = "drop"
	// ModeFlaky fails the first K matching operations, then passes — the
	// canonical retry-able failure (a sensor warming up, a broker
	// reconnecting).
	ModeFlaky Mode = "flaky"
	// ModeTorn persists only a seeded prefix of a storage write, then kills
	// the process (power loss mid-write). Storage backends only.
	ModeTorn Mode = "torn"
	// ModeShortRead returns only a seeded prefix of a storage read.
	ModeShortRead Mode = "shortread"
	// ModeCorrupt silently flips one seeded byte on a storage write or
	// read; the caller observes success (bit rot, a misdirected write).
	ModeCorrupt Mode = "corrupt"
	// ModeCrash kills the process at the matched storage operation. Point
	// ("before"/"after") selects, for sync ops, whether pending data is
	// lost or had already reached durable media.
	ModeCrash Mode = "crash"
)

// Rule matches host operations and prescribes a fault. Empty (or "*")
// Module/Op match anything; Target matches by substring. Prob scales the
// match down probabilistically (1 or 0 mean "always" for fail/delay/drop;
// flaky ignores Prob — its K counter is the whole point).
type Rule struct {
	Module string  `json:"module,omitempty"`
	Op     string  `json:"op,omitempty"`
	Target string  `json:"target,omitempty"`
	Mode   Mode    `json:"mode"`
	K      int     `json:"k,omitempty"`     // flaky: fail the first K matches
	Delay  int64   `json:"delay,omitempty"` // delay: virtual ticks
	Prob   float64 `json:"prob,omitempty"`  // 0 or 1 → always
	Error  string  `json:"error,omitempty"` // injected error message
	Point  string  `json:"point,omitempty"` // crash: "before" or "after" the sync barrier
}

// matches reports whether the rule applies to one host operation.
func (r *Rule) matches(module, op, target string) bool {
	if r.Module != "" && r.Module != "*" && r.Module != module {
		return false
	}
	if r.Op != "" && r.Op != "*" && r.Op != op {
		return false
	}
	if r.Target != "" && !contains(target, r.Target) {
		return false
	}
	return true
}

func contains(s, sub string) bool {
	if sub == "" {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Schedule is a complete fault plan: a seed plus an ordered rule list
// (first matching rule wins). The same schedule always produces the same
// fault sequence for the same sequence of host operations.
type Schedule struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// ParseSchedule decodes and validates a JSON schedule.
func ParseSchedule(data []byte) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("faults: invalid schedule JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// MarshalJSON renders the schedule in its canonical form.
func (s *Schedule) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Validate checks every rule for a known mode and sane parameters.
func (s *Schedule) Validate() error {
	for i, r := range s.Rules {
		switch r.Mode {
		case ModeFail, ModeDrop, ModeTorn, ModeShortRead, ModeCorrupt:
		case ModeDelay:
			if r.Delay <= 0 {
				return fmt.Errorf("faults: rule %d: delay mode needs delay > 0", i)
			}
		case ModeFlaky:
			if r.K <= 0 {
				return fmt.Errorf("faults: rule %d: flaky mode needs k > 0", i)
			}
		case ModeCrash:
			if r.Point != "" && r.Point != "before" && r.Point != "after" {
				return fmt.Errorf("faults: rule %d: crash point %q is not \"before\" or \"after\"", i, r.Point)
			}
		default:
			return fmt.Errorf("faults: rule %d: unknown mode %q", i, r.Mode)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("faults: rule %d: prob %v outside [0,1]", i, r.Prob)
		}
	}
	return nil
}

// Generate builds the chaos-mode schedule for one named scenario (the
// harness derives the name from the app under test). The rule mix covers
// every fault mode across the host modules the corpus uses; the seed and
// name select which operations actually fire, so two apps see different —
// but individually reproducible — fault sequences from one -faultseed.
func Generate(seed int64, name string) *Schedule {
	h := splitmix64(uint64(seed) ^ hashString(name))
	// derived probabilities in [0.1, 0.4): enough faults to exercise error
	// paths, few enough that most messages still flow end to end
	p := func() float64 {
		h = splitmix64(h)
		return 0.1 + 0.3*float64(h>>11)/float64(1<<53)
	}
	k := func(n int) int {
		h = splitmix64(h)
		return 1 + int(h%uint64(n))
	}
	return &Schedule{
		Seed: seed,
		Rules: []Rule{
			{Module: "fs", Op: "writeFile", Mode: ModeFlaky, K: k(3), Error: "EIO: injected write failure"},
			{Module: "net", Mode: ModeFail, Prob: p(), Error: "ECONNRESET: injected connection reset"},
			{Module: "mqtt", Mode: ModeDrop, Prob: p()},
			{Module: "http", Mode: ModeDelay, Delay: int64(1 + k(20))},
			{Module: "smtp", Mode: ModeFail, Prob: p(), Error: "ETIMEDOUT: injected smtp timeout"},
			{Module: "sqlite", Mode: ModeFlaky, K: k(2), Error: "SQLITE_BUSY: injected lock contention"},
			// the corpus apps log through write streams; a lossy stream
			// exercises ModeDrop on the path every runnable app takes
			{Module: "fs", Op: "stream.write", Mode: ModeDrop, Prob: p() / 2},
			{Module: "*", Mode: ModeDelay, Delay: int64(1 + k(5)), Prob: p() / 2},
			{Module: "*", Mode: ModeFail, Prob: p() / 4, Error: "EFAULT: injected fault"},
		},
	}
}
