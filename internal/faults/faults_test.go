package faults

import (
	"errors"
	"testing"
)

func TestClockAdvanceAndTimers(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d", c.Now())
	}
	var order []int
	c.AfterFunc(10, func() { order = append(order, 1) })
	c.AfterFunc(5, func() { order = append(order, 2) })
	c.AfterFunc(5, func() { order = append(order, 3) }) // same due: registration order
	c.Advance(4)
	if len(order) != 0 {
		t.Fatalf("fired early: %v", order)
	}
	c.Advance(10)
	if c.Now() != 14 {
		t.Fatalf("now = %d", c.Now())
	}
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 1 {
		t.Fatalf("order = %v", order)
	}
}

func TestClockNestedScheduling(t *testing.T) {
	c := NewClock()
	var fired []string
	c.AfterFunc(2, func() {
		fired = append(fired, "outer")
		c.AfterFunc(3, func() { fired = append(fired, "inner") })
	})
	c.Advance(10)
	if len(fired) != 2 || fired[0] != "outer" || fired[1] != "inner" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestClockTimerStop(t *testing.T) {
	c := NewClock()
	ran := false
	tm := c.AfterFunc(1, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	c.Advance(5)
	if ran {
		t.Fatal("stopped timer ran")
	}
	if got := c.Pending(); len(got) != 0 {
		t.Fatalf("pending = %v", got)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	src := []byte(`{
	  "seed": 42,
	  "rules": [
	    { "module": "fs", "op": "writeFile", "mode": "flaky", "k": 2, "error": "EIO" },
	    { "module": "mqtt", "mode": "drop", "prob": 0.5 },
	    { "module": "http", "mode": "delay", "delay": 7 },
	    { "mode": "fail", "error": "EFAULT" }
	  ]
	}`)
	s, err := ParseSchedule(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || len(s.Rules) != 4 {
		t.Fatalf("schedule = %+v", s)
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Rules) != 4 || again.Rules[0].K != 2 || again.Rules[2].Delay != 7 {
		t.Fatalf("round trip = %+v", again)
	}
}

func TestScheduleValidation(t *testing.T) {
	bad := []string{
		`{"rules":[{"mode":"explode"}]}`,
		`{"rules":[{"mode":"delay"}]}`,
		`{"rules":[{"mode":"flaky"}]}`,
		`{"rules":[{"mode":"fail","prob":1.5}]}`,
		`not json`,
	}
	for _, src := range bad {
		if _, err := ParseSchedule([]byte(src)); err == nil {
			t.Errorf("ParseSchedule(%q) should fail", src)
		}
	}
}

func TestInjectorFlakyFailsFirstK(t *testing.T) {
	s := &Schedule{Rules: []Rule{{Module: "fs", Op: "writeFile", Mode: ModeFlaky, K: 2, Error: "EIO"}}}
	in := NewInjector(s, nil)
	for i := 0; i < 2; i++ {
		d := in.Decide("fs", "writeFile", "/a")
		if d.Action != Fail || d.Err != "EIO" {
			t.Fatalf("attempt %d: %+v", i, d)
		}
	}
	if d := in.Decide("fs", "writeFile", "/a"); d.Action != Pass {
		t.Fatalf("post-K decision: %+v", d)
	}
	// a different target has its own K counter
	if d := in.Decide("fs", "writeFile", "/b"); d.Action != Fail {
		t.Fatalf("fresh target should still fail: %+v", d)
	}
	// unmatched ops pass
	if d := in.Decide("fs", "readFile", "/a"); d.Action != Pass {
		t.Fatalf("unmatched op: %+v", d)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	mk := func(seed int64) string {
		s := Generate(seed, "modbus")
		in := NewInjector(s, nil)
		for i := 0; i < 200; i++ {
			mod := []string{"fs", "net", "mqtt", "http", "smtp", "sqlite"}[i%6]
			in.Decide(mod, "write", "t")
		}
		return in.TraceString()
	}
	a, b := mk(7), mk(7)
	if a != b {
		t.Fatal("same seed produced different fault traces")
	}
	if a == mk(8) {
		t.Fatal("different seeds produced identical fault traces")
	}
	if mk(7) == "" {
		t.Fatal("generated schedule injected nothing in 200 ops")
	}
}

func TestInjectorCountKeyedNotStreamKeyed(t *testing.T) {
	// interleaving unrelated operations must not shift later verdicts for
	// a given (module, op, target, count) — the property that keeps the
	// original and instrumented runs in lockstep
	s := &Schedule{Seed: 3, Rules: []Rule{{Module: "net", Mode: ModeFail, Prob: 0.5, Error: "E"}}}
	plain := NewInjector(s, nil)
	noisy := NewInjector(s, nil)
	var got, want []Action
	for i := 0; i < 64; i++ {
		want = append(want, plain.Decide("net", "socket.write", "cam").Action)
		noisy.Decide("fs", "readFile", "/etc/x") // unmatched noise
		got = append(got, noisy.Decide("net", "socket.write", "cam").Action)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decision %d shifted: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestInjectorProbabilityEdges(t *testing.T) {
	always := NewInjector(&Schedule{Rules: []Rule{{Mode: ModeFail, Prob: 1}}}, nil)
	if d := always.Decide("m", "o", "t"); d.Action != Fail {
		t.Fatalf("prob 1: %+v", d)
	}
	zero := NewInjector(&Schedule{Rules: []Rule{{Mode: ModeDrop, Prob: 0}}}, nil)
	if d := zero.Decide("m", "o", "t"); d.Action != Drop {
		t.Fatalf("prob 0 means always: %+v", d)
	}
	mid := NewInjector(&Schedule{Seed: 1, Rules: []Rule{{Mode: ModeFail, Prob: 0.5}}}, nil)
	fails := 0
	for i := 0; i < 400; i++ {
		if mid.Decide("m", "o", "t").Action == Fail {
			fails++
		}
	}
	if fails < 100 || fails > 300 {
		t.Fatalf("prob 0.5 fired %d/400", fails)
	}
}

func TestInjectorFirstMatchWinsAndStats(t *testing.T) {
	s := &Schedule{Rules: []Rule{
		{Module: "fs", Mode: ModeDrop},
		{Module: "fs", Mode: ModeFail, Error: "shadowed"},
	}}
	in := NewInjector(s, nil)
	if d := in.Decide("fs", "writeFile", "/x"); d.Action != Drop {
		t.Fatalf("first rule should win: %+v", d)
	}
	in.Decide("net", "write", "y")
	st := in.Stats()
	if st.Ops != 2 || st.Dropped != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNilScheduleAndNilClock(t *testing.T) {
	in := NewInjector(nil, nil)
	if d := in.Decide("fs", "writeFile", "/x"); d.Action != Pass {
		t.Fatalf("nil schedule: %+v", d)
	}
	if in.Clock() == nil {
		t.Fatal("injector without clock")
	}
}

func TestRetryBackoffOnVirtualClock(t *testing.T) {
	clock := NewClock()
	calls := 0
	err := Retry(clock, 5, 3, func() error {
		calls++
		if calls < 4 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// three waits: 3 + 6 + 12 virtual ticks
	if clock.Now() != 21 {
		t.Fatalf("clock = %d", clock.Now())
	}
	// exhaustion returns the last error, with attempts-1 waits
	clock2 := NewClock()
	err = Retry(clock2, 3, 1, func() error { return errors.New("always") })
	if err == nil || err.Error() != "always" {
		t.Fatalf("err = %v", err)
	}
	if clock2.Now() != 3 { // 1 + 2
		t.Fatalf("clock2 = %d", clock2.Now())
	}
}

func TestJitteredRetryReproducesExactSchedule(t *testing.T) {
	// One seed must yield the exact same jittered backoff schedule on
	// every run — the fleet desynchronizes, the replay stays byte-stable.
	schedule := func(seed int64, key string) []int64 {
		in := NewInjector(&Schedule{Seed: seed}, NewClock())
		var waits []int64
		prev := int64(0)
		_ = in.Retry(5, 100, key, func() error {
			now := in.Clock().Now()
			waits = append(waits, now-prev)
			prev = now
			return errors.New("always")
		})
		return waits[1:] // first element is the zero-wait initial attempt
	}
	a := schedule(7, "tenantA/flow1")
	b := schedule(7, "tenantA/flow1")
	if len(a) != 4 {
		t.Fatalf("want 4 waits, got %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wait %d differs across runs: %d vs %d", i, a[i], b[i])
		}
	}
	// each wait stays inside the jitter window [nominal/2, 3·nominal/2)
	nominal := int64(100)
	for i, w := range a {
		if w < nominal/2 || w >= nominal+nominal/2 {
			t.Fatalf("wait %d = %d outside [%d, %d)", i, w, nominal/2, nominal+nominal/2)
		}
		nominal *= 2
	}
	// and the waits match the predictable per-attempt formula
	in := NewInjector(&Schedule{Seed: 7}, nil)
	for i, w := range a {
		if got := in.RetryBackoff(100, "tenantA/flow1", i); got != w {
			t.Fatalf("RetryBackoff(%d) = %d, observed %d", i, got, w)
		}
	}
	// different seeds and different keys decorrelate the schedule
	same := func(x, y []int64) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if same(a, schedule(8, "tenantA/flow1")) {
		t.Fatal("seed change left the schedule identical")
	}
	if same(a, schedule(7, "tenantB/flow1")) {
		t.Fatal("key change left the schedule identical")
	}
}

func TestJitteredRetrySucceedsMidSchedule(t *testing.T) {
	in := NewInjector(&Schedule{Seed: 3}, NewClock())
	calls := 0
	err := in.Retry(5, 10, "k", func() error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	want := in.RetryBackoff(10, "k", 0) + in.RetryBackoff(10, "k", 1)
	if in.Clock().Now() != want {
		t.Fatalf("clock = %d, want %d", in.Clock().Now(), want)
	}
}

func TestGenerateDeterministicPerNameAndSeed(t *testing.T) {
	a, _ := Generate(9, "modbus").Marshal()
	b, _ := Generate(9, "modbus").Marshal()
	if string(a) != string(b) {
		t.Fatal("Generate not deterministic")
	}
	c, _ := Generate(9, "nlp.js").Marshal()
	if string(a) == string(c) {
		t.Fatal("Generate ignores the name")
	}
	if err := Generate(9, "modbus").Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
}
