package faults

import "sort"

// Clock is the virtual time source of the fault layer. Time is a plain
// tick counter: nothing in the repository reads the wall clock on a fault
// path, so a run's entire temporal behaviour — injected delays, retry
// backoff waits, scheduled callbacks — is a deterministic function of the
// operations performed, never of host scheduling. One Clock belongs to one
// interpreter instance (the analogue of one process's event-loop clock).
type Clock struct {
	now    int64
	timers []*Timer
	seq    int64
}

// Timer is one scheduled callback.
type Timer struct {
	due     int64
	seq     int64 // registration order breaks due-time ties deterministically
	fn      func()
	stopped bool
}

// Stop cancels the timer; it reports whether the callback had not yet run.
func (t *Timer) Stop() bool {
	was := !t.stopped
	t.stopped = true
	return was
}

// NewClock returns a clock at tick zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual tick.
func (c *Clock) Now() int64 { return c.now }

// AfterFunc schedules fn to run when the clock has advanced delay ticks.
// A non-positive delay fires on the next Advance, not immediately — the
// caller's stack unwinds first, matching timer semantics.
func (c *Clock) AfterFunc(delay int64, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	c.seq++
	t := &Timer{due: c.now + delay, seq: c.seq, fn: fn}
	c.timers = append(c.timers, t)
	return t
}

// Advance moves virtual time forward by n ticks, firing due timers in
// (due, registration) order. Callbacks may schedule further timers; those
// fire in the same Advance call if they fall inside the window.
func (c *Clock) Advance(n int64) {
	if n < 0 {
		n = 0
	}
	target := c.now + n
	for {
		next := c.nextDue(target)
		if next == nil {
			break
		}
		if next.due > c.now {
			c.now = next.due
		}
		next.stopped = true
		next.fn()
	}
	c.now = target
	// compact the fired/stopped timers
	live := c.timers[:0]
	for _, t := range c.timers {
		if !t.stopped {
			live = append(live, t)
		}
	}
	c.timers = live
}

// nextDue returns the earliest live timer due at or before target.
func (c *Clock) nextDue(target int64) *Timer {
	var best *Timer
	for _, t := range c.timers {
		if t.stopped || t.due > target {
			continue
		}
		if best == nil || t.due < best.due || (t.due == best.due && t.seq < best.seq) {
			best = t
		}
	}
	return best
}

// Pending returns the due ticks of live timers, sorted — handy in tests.
func (c *Clock) Pending() []int64 {
	var out []int64
	for _, t := range c.timers {
		if !t.stopped {
			out = append(out, t.due)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
