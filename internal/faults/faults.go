// Package faults is the deterministic fault-injection layer of the
// reproduction's robustness story. A seeded Injector, configured by a
// JSON/struct Schedule, decides per host operation whether it passes,
// fails with a Node-style error, is silently dropped, or is delayed on a
// virtual Clock. Decisions are a pure function of (seed, module, op,
// target, per-operation invocation count) — never of goroutine
// interleaving, host time, or map iteration order — so one seed yields a
// byte-identical fault sequence across runs, across worker counts, and
// across the original and instrumented versions of an application. That
// last property is what lets the chaos harness extend the paper's E1
// sink-trace equivalence check from happy paths to failure paths.
package faults

import (
	"errors"
	"fmt"
	"strings"
)

// Action is the injector's verdict for one host operation.
type Action int

const (
	// Pass lets the operation proceed untouched.
	Pass Action = iota
	// Fail makes it fail with Decision.Err.
	Fail
	// Drop silently loses it (the caller observes success).
	Drop
	// Delay advances the virtual clock by Decision.Delay first.
	Delay
	// Torn persists only a prefix of a write (Decision.Frac of it) and then
	// kills the process — the canonical power-loss-mid-write fault of the
	// filesystem surface. Only storage backends interpret it.
	Torn
	// ShortRead returns only a prefix of the contents (Decision.Frac).
	ShortRead
	// Corrupt silently flips one byte (at the Decision.Frac offset) on the
	// write or read path; the caller observes success and the damage is
	// only discoverable by checksum.
	Corrupt
	// Crash kills the process at this operation without performing it. For
	// sync operations Decision.Point selects whether the pending data is
	// lost ("before") or was already made durable ("after").
	Crash
)

func (a Action) String() string {
	switch a {
	case Pass:
		return "pass"
	case Fail:
		return "fail"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Torn:
		return "torn"
	case ShortRead:
		return "shortread"
	case Corrupt:
		return "corrupt"
	case Crash:
		return "crash"
	}
	return "action?"
}

// Decision is the injector's answer for one operation.
type Decision struct {
	Action Action
	Err    string  // Fail: the injected error message
	Delay  int64   // Delay: virtual ticks
	Frac   float64 // Torn/ShortRead: surviving prefix fraction; Corrupt: byte offset fraction. Seeded, in [0,1).
	Point  string  // Crash on a sync op: "before" (pending lost) or "after" (pending durable)
}

// ErrCrash is the sentinel a storage backend returns when the injector
// decides the process dies at this operation. Hosts treat it as process
// death: stop everything, keep whatever the backend made durable, and let
// recovery sort out the rest.
var ErrCrash = errors.New("faults: simulated crash")

// Event is one non-pass decision, recorded for the deterministic fault
// trace the chaos harness compares across runs.
type Event struct {
	Seq    int // per-injector sequence number of the decision
	Module string
	Op     string
	Target string
	Action Action
}

// Stats counts decisions by action.
type Stats struct {
	Ops, Failed, Dropped, Delayed int
	// filesystem-surface decisions (torn writes, short reads, silent
	// corruptions, simulated process deaths)
	Torn, ShortReads, Corrupted, Crashes int
}

// Injector applies a Schedule to a stream of host operations. One
// Injector serves one interpreter instance; it is not safe for concurrent
// use (neither is the interpreter).
type Injector struct {
	schedule *Schedule
	clock    *Clock
	seed     uint64
	// counts tracks invocations per (module, op, target) triple; the count
	// — not a shared PRNG stream — keys each probabilistic decision, so
	// unrelated extra operations cannot shift later verdicts.
	counts map[string]int
	// flaky tracks per-rule, per-triple fired counts for ModeFlaky.
	flaky map[string]int
	seq   int
	trace []Event
	stats Stats
}

// NewInjector builds an injector for a schedule on a virtual clock. A nil
// clock gets a private one; a nil or empty schedule passes everything.
func NewInjector(s *Schedule, clock *Clock) *Injector {
	if s == nil {
		s = &Schedule{}
	}
	if clock == nil {
		clock = NewClock()
	}
	return &Injector{
		schedule: s,
		clock:    clock,
		seed:     splitmix64(uint64(s.Seed) ^ 0x7475726e7374696c), // "turnstil"
		counts:   make(map[string]int),
		flaky:    make(map[string]int),
	}
}

// Clock returns the virtual clock the injector delays on.
func (in *Injector) Clock() *Clock { return in.clock }

// Stats returns decision counts so far.
func (in *Injector) Stats() Stats { return in.stats }

// Trace returns the recorded non-pass events in decision order.
func (in *Injector) Trace() []Event { return in.trace }

// TraceString renders the fault trace one event per line — the
// byte-identical artifact the determinism gates compare.
func (in *Injector) TraceString() string {
	var b strings.Builder
	for _, e := range in.trace {
		fmt.Fprintf(&b, "%04d %s %s.%s %s\n", e.Seq, e.Action, e.Module, e.Op, e.Target)
	}
	return b.String()
}

// Decide is the single entry point the host modules call before
// performing an operation. It never performs the delay itself — the
// caller advances the clock — so the decision stays side-effect free.
func (in *Injector) Decide(module, op, target string) Decision {
	in.seq++
	key := module + "\x00" + op + "\x00" + target
	n := in.counts[key]
	in.counts[key] = n + 1
	in.stats.Ops++
	for ri := range in.schedule.Rules {
		r := &in.schedule.Rules[ri]
		if !r.matches(module, op, target) {
			continue
		}
		d, fired := in.apply(r, ri, key, n)
		if !fired {
			continue
		}
		switch d.Action {
		case Fail:
			in.stats.Failed++
		case Drop:
			in.stats.Dropped++
		case Delay:
			in.stats.Delayed++
		case Torn:
			in.stats.Torn++
		case ShortRead:
			in.stats.ShortReads++
		case Corrupt:
			in.stats.Corrupted++
		case Crash:
			in.stats.Crashes++
		}
		in.trace = append(in.trace, Event{Seq: in.seq, Module: module, Op: op, Target: target, Action: d.Action})
		return d
	}
	return Decision{Action: Pass}
}

// apply evaluates one matching rule against the n-th invocation of a
// (module, op, target) triple.
func (in *Injector) apply(r *Rule, ri int, key string, n int) (Decision, bool) {
	if r.Mode == ModeFlaky {
		fk := fmt.Sprintf("%d\x00%s", ri, key)
		if in.flaky[fk] >= r.K {
			return Decision{}, false
		}
		in.flaky[fk]++
		return Decision{Action: Fail, Err: in.errMsg(r)}, true
	}
	if r.Prob > 0 && r.Prob < 1 {
		// hash-derived uniform in [0,1): depends only on seed, rule index,
		// operation identity and invocation count
		h := splitmix64(in.seed ^ splitmix64(uint64(ri)+1) ^ hashString(key) ^ splitmix64(uint64(n)))
		if float64(h>>11)/float64(1<<53) >= r.Prob {
			return Decision{}, false
		}
	}
	switch r.Mode {
	case ModeFail:
		return Decision{Action: Fail, Err: in.errMsg(r)}, true
	case ModeDrop:
		return Decision{Action: Drop}, true
	case ModeDelay:
		return Decision{Action: Delay, Delay: r.Delay}, true
	case ModeTorn:
		return Decision{Action: Torn, Frac: in.frac(ri, key, n)}, true
	case ModeShortRead:
		return Decision{Action: ShortRead, Frac: in.frac(ri, key, n)}, true
	case ModeCorrupt:
		return Decision{Action: Corrupt, Frac: in.frac(ri, key, n)}, true
	case ModeCrash:
		return Decision{Action: Crash, Point: r.Point}, true
	}
	return Decision{}, false
}

// frac derives the seeded cut/offset fraction in [0,1) for the filesystem
// fault modes — a pure function of (seed, rule, operation, invocation), so
// a torn write always tears at the same byte on replay.
func (in *Injector) frac(ri int, key string, n int) float64 {
	h := splitmix64(in.seed ^ splitmix64(uint64(ri)+0x46524143) ^ hashString(key) ^ splitmix64(uint64(n))) // "FRAC"
	return float64(h>>11) / float64(1<<53)
}

func (in *Injector) errMsg(r *Rule) string {
	if r.Error != "" {
		return r.Error
	}
	return "EFAULT: injected fault"
}

// Retry calls fn up to attempts times, advancing the virtual clock by an
// exponentially growing backoff (base, 2·base, 4·base, …) between
// attempts. It returns nil on the first success and the last error once
// the budget is exhausted. This is the Go-side twin of the MiniJS retry()
// global; both give applications and the Node-RED substrate a sanctioned
// way to ride out ModeFlaky faults without real sleeps.
func Retry(clock *Clock, attempts int, base int64, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	if base < 1 {
		base = 1
	}
	var err error
	backoff := base
	if backoff > maxBackoff {
		backoff = maxBackoff
	}
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if i < attempts-1 {
			clock.Advance(backoff)
			if backoff < maxBackoff {
				backoff *= 2
				if backoff > maxBackoff {
					backoff = maxBackoff
				}
			}
		}
	}
	return err
}

// maxBackoff caps the exponential ladders of Retry and RetryBackoff. A
// ladder that doubles past 2^40 virtual ticks (~35 simulated years) is in
// practice "never"; without the cap a deep attempt count silently
// overflows int64 — base·2^63 wraps negative, Clock.Advance clamps it to
// zero, and the schedule collapses into a hot retry loop.
const maxBackoff = int64(1) << 40

// Retry is the jittered twin of the package-level Retry for callers that
// hold an Injector. The i-th backoff is the nominal exponential value
// (base·2^i) scattered into [nominal/2, 3·nominal/2) by a hash of
// (injector seed, key, attempt), so a fleet of tenants that shed and
// retry at the same virtual tick desynchronizes instead of stampeding —
// yet the whole schedule is a pure function of the seed and key and
// replays byte-identically.
func (in *Injector) Retry(attempts int, base int64, key string, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if i < attempts-1 {
			in.clock.Advance(in.RetryBackoff(base, key, i))
		}
	}
	return err
}

// RetryBackoff returns the deterministic jittered backoff for the
// attempt-th retry (0-based) of the operation named key, without
// performing it — exposed so tests and schedulers can predict the exact
// schedule a seed produces.
func (in *Injector) RetryBackoff(base int64, key string, attempt int) int64 {
	if base < 1 {
		base = 1
	}
	// cap the shift: nominal = min(base·2^attempt, maxBackoff), computed
	// without ever leaving int64 range even for attempt ≥ 63 or a base near
	// MaxInt64 (the jitter arithmetic below adds nominal/2 + nominal-1,
	// which stays positive only while nominal ≤ maxBackoff)
	nominal := base
	if nominal > maxBackoff {
		nominal = maxBackoff
	}
	for i := 0; i < attempt && nominal < maxBackoff; i++ {
		nominal *= 2
		if nominal > maxBackoff {
			nominal = maxBackoff
		}
	}
	h := splitmix64(in.seed ^ hashString(key) ^ splitmix64(uint64(attempt)+0x52455452)) // "RETR"
	jittered := nominal/2 + int64(h%uint64(nominal))
	if jittered < 1 {
		jittered = 1
	}
	return jittered
}

// splitmix64 is the SplitMix64 mixing function — platform-stable, no
// dependence on math/rand internals that could change between Go releases.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString is FNV-1a, inlined to keep the decision function dependency-
// free and bit-stable.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
