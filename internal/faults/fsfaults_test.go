package faults

import (
	"errors"
	"math"
	"testing"
)

var errTest = errors.New("always")

// TestRetryBackoffDeepLadderCapsShift pins the exact schedule of a deep
// exponential ladder: once base·2^attempt reaches the 2^40 cap the nominal
// stops moving, every deeper attempt stays inside (cap/2, 3·cap/2), and
// the value never overflows into a non-positive wait.
func TestRetryBackoffDeepLadderCapsShift(t *testing.T) {
	in := NewInjector(&Schedule{Seed: 7}, nil)
	const cap = int64(1) << 40
	// shallow attempts are untouched by the cap: nominal = base·2^attempt
	for attempt := 0; attempt < 20; attempt++ {
		nominal := int64(3) << uint(attempt)
		got := in.RetryBackoff(3, "deep", attempt)
		if got < nominal/2 || got >= nominal/2+nominal {
			t.Fatalf("attempt %d: backoff %d outside [%d, %d)", attempt, got, nominal/2, nominal/2+nominal)
		}
	}
	// deep attempts: the shift is capped, the schedule stays exact and
	// positive — the same jitter hash applied to the capped nominal
	for _, attempt := range []int{39, 40, 63, 64, 100, 1 << 20} {
		got := in.RetryBackoff(3, "deep", attempt)
		if got <= 0 {
			t.Fatalf("attempt %d: backoff %d not positive (overflow escaped the cap)", attempt, got)
		}
		if got < cap/2 || got >= cap/2+cap {
			t.Fatalf("attempt %d: backoff %d outside capped window [%d, %d)", attempt, got, cap/2, cap/2+cap)
		}
		h := splitmix64(in.seed ^ hashString("deep") ^ splitmix64(uint64(attempt)+0x52455452))
		want := cap/2 + int64(h%uint64(cap))
		if got != want {
			t.Fatalf("attempt %d: backoff %d, want exact capped schedule value %d", attempt, got, want)
		}
	}
	// a base already past the cap is clamped before jittering
	for _, base := range []int64{cap + 1, math.MaxInt64 / 2, math.MaxInt64} {
		if got := in.RetryBackoff(base, "huge", 0); got <= 0 || got >= cap/2+cap {
			t.Fatalf("base %d: backoff %d escaped the cap", base, got)
		}
	}
}

// TestRetryPackageLevelDeepLadderNoOverflow drives the unjittered Retry
// through enough attempts to overflow an uncapped doubling ladder and
// checks the waits remain the exact capped schedule.
func TestRetryPackageLevelDeepLadderNoOverflow(t *testing.T) {
	clock := NewClock()
	var waits []int64
	prev := int64(0)
	_ = Retry(clock, 70, 1, func() error {
		now := clock.Now()
		waits = append(waits, now-prev)
		prev = now
		return errTest
	})
	// waits[0] is 0 (recorded before the first backoff); wait i+1 follows
	// attempt i
	want := int64(1)
	for i := 1; i < len(waits); i++ {
		if waits[i] != want {
			t.Fatalf("wait %d = %d, want %d", i, waits[i], want)
		}
		if want < maxBackoff {
			want *= 2
			if want > maxBackoff {
				want = maxBackoff
			}
		}
	}
	if clock.Now() <= 0 {
		t.Fatalf("virtual clock went non-positive: %d", clock.Now())
	}
}

// TestFilesystemFaultModes exercises the torn/shortread/corrupt/crash
// decisions: deterministic fractions, point validation, trace and stats
// accounting.
func TestFilesystemFaultModes(t *testing.T) {
	s := &Schedule{Seed: 11, Rules: []Rule{
		{Module: "store", Op: "append", Mode: ModeTorn},
		{Module: "store", Op: "read", Mode: ModeShortRead},
		{Module: "store", Op: "write", Mode: ModeCorrupt},
		{Module: "store", Op: "sync", Mode: ModeCrash, Point: "before"},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	in := NewInjector(s, nil)
	d := in.Decide("store", "append", "t/wal")
	if d.Action != Torn || d.Frac < 0 || d.Frac >= 1 {
		t.Fatalf("torn decision = %+v", d)
	}
	// same (seed, op, invocation) → same fraction on a fresh injector
	if d2 := NewInjector(s, nil).Decide("store", "append", "t/wal"); d2.Frac != d.Frac {
		t.Fatalf("torn fraction not deterministic: %v vs %v", d.Frac, d2.Frac)
	}
	if d := in.Decide("store", "read", "t/wal"); d.Action != ShortRead {
		t.Fatalf("shortread decision = %+v", d)
	}
	if d := in.Decide("store", "write", "t/snap"); d.Action != Corrupt {
		t.Fatalf("corrupt decision = %+v", d)
	}
	if d := in.Decide("store", "sync", "t/wal"); d.Action != Crash || d.Point != "before" {
		t.Fatalf("crash decision = %+v", d)
	}
	st := in.Stats()
	if st.Torn != 1 || st.ShortReads != 1 || st.Corrupted != 1 || st.Crashes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := len(in.Trace()); got != 4 {
		t.Fatalf("trace has %d events, want 4", got)
	}

	bad := &Schedule{Rules: []Rule{{Mode: ModeCrash, Point: "sideways"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("crash point \"sideways\" validated")
	}
}
