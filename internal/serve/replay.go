package serve

import (
	"fmt"

	"turnstile/internal/durable"
)

// ReplayedLetter is one dead letter re-driven by ReplayDeadLetters.
type ReplayedLetter struct {
	Idx     int
	Payload string
	Outcome string
	Detail  string
}

// ReplayDeadLetters recovers one tenant from the store (finishing its state
// machine if the restart left work queued) and then re-drives every
// not-yet-replayed dead letter through the recovered driver, appending a
// replay record per message so the decision — and the taint its processing
// produced — survives further restarts. Replay is refused for a poisoned
// tenant: with the durable state unverifiable, re-driving messages into
// sinks is exactly what fail-closed recovery exists to prevent.
func ReplayDeadLetters(cfg TenantConfig, store durable.Store) ([]ReplayedLetter, *TenantReport, error) {
	rep, err := RunTenantDurable(cfg, store, 0)
	if err != nil {
		return nil, nil, err
	}
	if rep.Crashed {
		return nil, rep, fmt.Errorf("serve: tenant %s crashed during recovery", cfg.Name)
	}
	if rep.Poisoned {
		return nil, rep, fmt.Errorf("serve: tenant %s is poisoned (%s); replay refused", cfg.Name, rep.PoisonReason)
	}
	walName := WALName(cfg.Name)
	data, err := store.ReadFile(walName)
	if err != nil {
		return nil, rep, err
	}
	recs, verdict := durable.DecodeRecords(data)
	if !verdict.Clean {
		return nil, rep, fmt.Errorf("serve: tenant %s wal unverifiable after recovery: %s", cfg.Name, verdict.Reason)
	}
	lastSeq := 0
	if len(recs) > 0 {
		lastSeq = recs[len(recs)-1].Seq
	}
	wal := durable.ResumeWAL(store, walName, lastSeq)
	var replayed []ReplayedLetter
	for j := range rep.DLQ {
		d := &rep.DLQ[j]
		if d.Replayed {
			continue
		}
		out := cfg.Driver.Process(d.Idx, d.Payload)
		if err := wal.Append(durable.Record{
			Kind: durable.KindReplay, Idx: d.Idx, Payload: d.Payload,
			Outcome: string(out.Kind), Detail: out.Detail, Steps: out.Steps,
			Labels: d.Labels,
		}); err != nil {
			return replayed, rep, err
		}
		d.Replayed = true
		replayed = append(replayed, ReplayedLetter{Idx: d.Idx, Payload: d.Payload, Outcome: string(out.Kind), Detail: out.Detail})
	}
	return replayed, rep, nil
}
