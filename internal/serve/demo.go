package serve

import (
	"fmt"

	"turnstile/internal/corpus"
	"turnstile/internal/guard"
	"turnstile/internal/workload"
)

// DefaultTenantLimits is the per-message guard budget the demo fleet runs
// under — generous enough that every corpus app finishes each message,
// tight enough that a runaway message dies inside its own epoch.
func DefaultTenantLimits() guard.Limits {
	return guard.Limits{Fuel: 5_000_000, MaxDepth: 256, MaxAlloc: 1 << 20}
}

// DemoFleet builds n well-behaved tenants, each hosting a runnable corpus
// application under the §6.2 audit posture with a seeded arrival trace.
// Everything — app assignment, traffic, quotas — is a pure function of
// (seed, tenant index), so a tenant's solo run and its run inside any
// fleet see byte-identical inputs; that is the property the isolation
// battery turns into a gate.
func DemoFleet(n, messages int, seed int64, quota Quota, maxGap int64) ([]TenantConfig, error) {
	var runnable []*corpus.App
	for _, app := range corpus.All() {
		if app.Runnable {
			runnable = append(runnable, app)
		}
	}
	if len(runnable) == 0 {
		return nil, fmt.Errorf("serve: corpus has no runnable apps")
	}
	tenants := make([]TenantConfig, 0, n)
	for i := 0; i < n; i++ {
		app := runnable[i%len(runnable)]
		name := fmt.Sprintf("tenant-%02d-%s", i, app.Name)
		lim := DefaultTenantLimits()
		driver, err := NewAppDriver(AppConfig{
			Name:       name,
			Sources:    map[string]string{app.Name + ".js": app.Source},
			PolicyJSON: app.PolicyJSON,
			SourceName: app.SourceName,
			Limits:     &lim,
		})
		if err != nil {
			return nil, err
		}
		tenants = append(tenants, TenantConfig{
			Name:     name,
			Quota:    quota,
			Arrivals: workload.GenerateTrace(seed, name, messages, maxGap),
			Driver:   driver,
		})
	}
	return tenants, nil
}
