package serve

import (
	"fmt"

	"turnstile/internal/telemetry"
)

// queuedMsg is one admitted message waiting for the tenant's server.
type queuedMsg struct {
	idx     int
	arrival int64
	payload string
}

// RunTenant drives one tenant's arrival trace through the admission /
// shedding / drain state machine on a deterministic single-server FIFO
// queue (see the package comment). Exported so the isolation battery can
// run a tenant solo under exactly the daemon's scheduling rules.
func RunTenant(cfg TenantConfig) (*TenantReport, error) {
	if cfg.Driver == nil {
		return nil, fmt.Errorf("serve: tenant %s has no driver", cfg.Name)
	}
	for i := 1; i < len(cfg.Arrivals); i++ {
		if cfg.Arrivals[i].Tick < cfg.Arrivals[i-1].Tick {
			return nil, fmt.Errorf("serve: tenant %s arrival trace not sorted at %d", cfg.Name, i)
		}
	}
	reloads := make(map[int]string, len(cfg.Reloads))
	for _, r := range cfg.Reloads {
		if _, dup := reloads[r.BeforeMsg]; dup {
			return nil, fmt.Errorf("serve: tenant %s has duplicate reload before message %d", cfg.Name, r.BeforeMsg)
		}
		reloads[r.BeforeMsg] = r.PolicyJSON
	}

	rep := &TenantReport{Name: cfg.Name}
	var queue []queuedMsg
	var busyUntil int64

	serveOne := func(q queuedMsg) {
		start := busyUntil
		if q.arrival > start {
			start = q.arrival
		}
		out := cfg.Driver.Process(q.idx, q.payload)
		service := int64(1)
		if out.Steps > 0 {
			service += out.Steps / StepsPerTick
		}
		busyUntil = start + service
		rep.Processed++
		rep.Latencies = append(rep.Latencies, busyUntil-q.arrival)
		switch out.Kind {
		case OutcomeOK:
			rep.OK++
		case OutcomeViolation:
			rep.Violations++
		case OutcomeBudget:
			rep.Budget++
		case OutcomeThrow:
			rep.Throws++
		default:
			rep.Errors++
		}
	}

	for i, a := range cfg.Arrivals {
		// catch the server up: serve queued messages that start no later
		// than this arrival
		for len(queue) > 0 && busyUntil <= a.Tick {
			q := queue[0]
			queue = queue[1:]
			serveOne(q)
		}
		// hot policy reload: applied between messages — after the catch-up,
		// before this arrival is admitted — so a message is judged entirely
		// under one policy, never mid-flight
		if pj, ok := reloads[i]; ok {
			if err := cfg.Driver.Reload(pj); err != nil {
				return nil, fmt.Errorf("serve: tenant %s reload before message %d: %w", cfg.Name, i, err)
			}
			rep.Reloads++
		}
		// load shedding: queued messages overtaken by more than the lag
		// quota go to the DLQ — by construction the queue is in arrival
		// order, so shedding strictly from the front is exhaustive
		if cfg.Quota.MaxLagTicks > 0 {
			for len(queue) > 0 && a.Tick-queue[0].arrival > cfg.Quota.MaxLagTicks {
				q := queue[0]
				queue = queue[1:]
				rep.Shed++
				rep.DLQ = append(rep.DLQ, ShedMsg{Idx: q.idx, Arrival: q.arrival, Reason: "lag", Payload: q.payload})
			}
		}
		// admission control: depth counts the queue plus the in-service
		// message (the server is busy strictly past this tick)
		depth := len(queue)
		if busyUntil > a.Tick {
			depth++
		}
		if cfg.Quota.MaxQueue > 0 && depth >= cfg.Quota.MaxQueue {
			rep.Denied++
			continue
		}
		rep.Admitted++
		queue = append(queue, queuedMsg{idx: i, arrival: a.Tick, payload: a.Payload})
	}

	// graceful drain: admission is over; serve up to DrainBudget queued
	// messages, dead-letter the rest
	drainBudget := cfg.Quota.DrainBudget
	for len(queue) > 0 {
		if drainBudget >= 0 && rep.Drained >= drainBudget {
			break
		}
		q := queue[0]
		queue = queue[1:]
		serveOne(q)
		rep.Drained++
	}
	for _, q := range queue {
		rep.Abandoned++
		rep.DLQ = append(rep.DLQ, ShedMsg{Idx: q.idx, Arrival: q.arrival, Reason: "shutdown", Payload: q.payload})
	}
	rep.ClockEnd = busyUntil
	rep.Fingerprint = cfg.Driver.Fingerprint()

	// telemetry flush, the last step of the drain protocol
	if m := cfg.Metrics; m != nil {
		m.Add(telemetry.CtrServeAdmitted, int64(rep.Admitted))
		m.Add(telemetry.CtrServeProcessed, int64(rep.Processed))
		m.Add(telemetry.CtrServeDenied, int64(rep.Denied))
		m.Add(telemetry.CtrServeShed, int64(rep.Shed))
		m.Add(telemetry.CtrServeDrained, int64(rep.Drained))
		m.Add(telemetry.CtrServeAbandoned, int64(rep.Abandoned))
		m.Add(telemetry.CtrServeReloads, int64(rep.Reloads))
		m.Add(telemetry.CtrServeViolations, int64(rep.Violations))
	}
	return rep, nil
}
