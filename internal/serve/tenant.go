package serve

import (
	"errors"
	"fmt"

	"turnstile/internal/durable"
	"turnstile/internal/faults"
	"turnstile/internal/telemetry"
)

// queuedMsg is one admitted message waiting for the tenant's server.
type queuedMsg struct {
	idx     int
	arrival int64
	payload string
	// labels is the admission-time DIFT label estimate, carried so a later
	// shed or abandon keeps the dead letter labeled. Only populated when
	// the tenant runs durably.
	labels []string
}

// tenantState is the resumable position of one tenant's state machine:
// everything the admission/shedding/drain loop needs to continue from an
// arbitrary point. A live run owns one from scratch; recovery rebuilds one
// by replaying the tenant's WAL and hands it back to the same loop.
type tenantState struct {
	rep       *TenantReport
	queue     []queuedMsg
	busyUntil int64
	// nextArrival is the first arrival index not yet decided (admitted or
	// denied).
	nextArrival int
	// applied marks reloads already performed (by BeforeMsg index), so a
	// resume never re-applies a recorded policy swap.
	applied map[int]bool
	// completed marks a WAL that ends in a complete record: the tenant
	// finished before the restart, nothing is left to serve.
	completed bool
	// poisonLogged dedups the poison-transition WAL record.
	poisonLogged bool
}

func newTenantState(name string) *tenantState {
	return &tenantState{rep: &TenantReport{Name: name}, applied: make(map[int]bool)}
}

// validateTenant checks the config invariants shared by the live and
// durable entry points and indexes the reload plan.
func validateTenant(cfg TenantConfig) (map[int]string, error) {
	if cfg.Driver == nil {
		return nil, fmt.Errorf("serve: tenant %s has no driver", cfg.Name)
	}
	for i := 1; i < len(cfg.Arrivals); i++ {
		if cfg.Arrivals[i].Tick < cfg.Arrivals[i-1].Tick {
			return nil, fmt.Errorf("serve: tenant %s arrival trace not sorted at %d", cfg.Name, i)
		}
	}
	reloads := make(map[int]string, len(cfg.Reloads))
	for _, r := range cfg.Reloads {
		if _, dup := reloads[r.BeforeMsg]; dup {
			return nil, fmt.Errorf("serve: tenant %s has duplicate reload before message %d", cfg.Name, r.BeforeMsg)
		}
		reloads[r.BeforeMsg] = r.PolicyJSON
	}
	return reloads, nil
}

// RunTenant drives one tenant's arrival trace through the admission /
// shedding / drain state machine on a deterministic single-server FIFO
// queue (see the package comment). Exported so the isolation battery can
// run a tenant solo under exactly the daemon's scheduling rules.
func RunTenant(cfg TenantConfig) (*TenantReport, error) {
	reloads, err := validateTenant(cfg)
	if err != nil {
		return nil, err
	}
	return runMachine(cfg, newTenantState(cfg.Name), reloads, nil)
}

// applyOutcome folds one processed message into the report and advances
// the busy horizon. It is the single definition of the service-time and
// accounting rules, shared by the live machine and WAL replay, so both
// derive bit-identical state from the same Process results.
func applyOutcome(st *tenantState, q queuedMsg, out Outcome, drained bool) (start, latency int64) {
	start = st.busyUntil
	if q.arrival > start {
		start = q.arrival
	}
	service := int64(1)
	if out.Steps > 0 {
		service += out.Steps / StepsPerTick
	}
	st.busyUntil = start + service
	rep := st.rep
	rep.Processed++
	if drained {
		rep.Drained++
	}
	latency = st.busyUntil - q.arrival
	rep.Latencies = append(rep.Latencies, latency)
	switch out.Kind {
	case OutcomeOK:
		rep.OK++
	case OutcomeViolation:
		rep.Violations++
	case OutcomeBudget:
		rep.Budget++
	case OutcomeThrow:
		rep.Throws++
	default:
		rep.Errors++
	}
	return start, latency
}

// runMachine continues the tenant state machine from wherever st stands —
// the start for a live run, the replayed position for a recovery — logging
// every transition to the sink (nil = run without durability). A
// faults.ErrCrash from the sink ends the run as a Crashed report, not an
// error: the process died, the durable state holds what survived.
func runMachine(cfg TenantConfig, st *tenantState, reloads map[int]string, sink *walSink) (*TenantReport, error) {
	rep := st.rep
	crashedOr := func(err error) (*TenantReport, error) {
		if errors.Is(err, faults.ErrCrash) {
			rep.Crashed = true
			return rep, nil
		}
		return nil, err
	}
	prober := sink.prober()

	serveOne := func(q queuedMsg, drained bool) error {
		out := cfg.Driver.Process(q.idx, q.payload)
		start, lat := applyOutcome(st, q, out, drained)
		// the commit record: appended after processing, so a crash in
		// between leaves the message in the queue and recovery re-processes
		// it deterministically
		if err := sink.append(st, durable.Record{
			Kind: durable.KindProcess, Idx: q.idx, Tick: start,
			Outcome: string(out.Kind), Detail: out.Detail, Steps: out.Steps,
			Busy: st.busyUntil, Latency: lat, Drained: drained,
		}); err != nil {
			return err
		}
		if out.Kind == OutcomeBudget {
			if err := sink.append(st, durable.Record{Kind: durable.KindGuard, Idx: q.idx, Tick: start, Reason: out.Detail}); err != nil {
				return err
			}
		}
		if prober != nil && !st.poisonLogged {
			if deg, reason := prober.PoisonState(); deg {
				st.poisonLogged = true
				if err := sink.append(st, durable.Record{Kind: durable.KindPoison, Tick: st.busyUntil, Reason: reason, Degraded: true}); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for ; st.nextArrival < len(cfg.Arrivals); st.nextArrival++ {
		i := st.nextArrival
		a := cfg.Arrivals[i]
		// catch the server up: serve queued messages that start no later
		// than this arrival
		for len(st.queue) > 0 && st.busyUntil <= a.Tick {
			q := st.queue[0]
			st.queue = st.queue[1:]
			if err := serveOne(q, false); err != nil {
				return crashedOr(err)
			}
		}
		// hot policy reload: applied between messages — after the catch-up,
		// before this arrival is admitted — so a message is judged entirely
		// under one policy, never mid-flight. A reload already replayed from
		// the WAL is not applied twice.
		if pj, ok := reloads[i]; ok && !st.applied[i] {
			if err := cfg.Driver.Reload(pj); err != nil {
				return nil, fmt.Errorf("serve: tenant %s reload before message %d: %w", cfg.Name, i, err)
			}
			st.applied[i] = true
			rep.Reloads++
			if err := sink.append(st, durable.Record{Kind: durable.KindReload, Idx: i, Tick: a.Tick, Policy: pj}); err != nil {
				return crashedOr(err)
			}
		}
		// load shedding: queued messages overtaken by more than the lag
		// quota go to the DLQ — by construction the queue is in arrival
		// order, so shedding strictly from the front is exhaustive
		if cfg.Quota.MaxLagTicks > 0 {
			for len(st.queue) > 0 && a.Tick-st.queue[0].arrival > cfg.Quota.MaxLagTicks {
				q := st.queue[0]
				st.queue = st.queue[1:]
				rep.Shed++
				rep.DLQ = append(rep.DLQ, ShedMsg{Idx: q.idx, Arrival: q.arrival, Reason: "lag", Payload: q.payload, Labels: q.labels})
				if err := sink.append(st, durable.Record{Kind: durable.KindShed, Idx: q.idx, Tick: q.arrival, Reason: "lag", Payload: q.payload, Labels: q.labels}); err != nil {
					return crashedOr(err)
				}
			}
		}
		// admission control: depth counts the queue plus the in-service
		// message (the server is busy strictly past this tick)
		depth := len(st.queue)
		if st.busyUntil > a.Tick {
			depth++
		}
		if cfg.Quota.MaxQueue > 0 && depth >= cfg.Quota.MaxQueue {
			rep.Denied++
			if err := sink.append(st, durable.Record{Kind: durable.KindDeny, Idx: i, Tick: a.Tick}); err != nil {
				return crashedOr(err)
			}
			continue
		}
		rep.Admitted++
		var labels []string
		if sink != nil && prober != nil {
			labels = prober.PayloadLabels(a.Payload)
		}
		st.queue = append(st.queue, queuedMsg{idx: i, arrival: a.Tick, payload: a.Payload, labels: labels})
		if err := sink.append(st, durable.Record{Kind: durable.KindAdmit, Idx: i, Tick: a.Tick, Payload: a.Payload, Labels: labels}); err != nil {
			return crashedOr(err)
		}
	}

	// graceful drain: admission is over; serve up to DrainBudget queued
	// messages, dead-letter the rest
	drainBudget := cfg.Quota.DrainBudget
	for len(st.queue) > 0 {
		if drainBudget >= 0 && rep.Drained >= drainBudget {
			break
		}
		q := st.queue[0]
		st.queue = st.queue[1:]
		if err := serveOne(q, true); err != nil {
			return crashedOr(err)
		}
	}
	for len(st.queue) > 0 {
		q := st.queue[0]
		st.queue = st.queue[1:]
		rep.Abandoned++
		rep.DLQ = append(rep.DLQ, ShedMsg{Idx: q.idx, Arrival: q.arrival, Reason: "shutdown", Payload: q.payload, Labels: q.labels})
		if err := sink.append(st, durable.Record{Kind: durable.KindAbandon, Idx: q.idx, Tick: q.arrival, Payload: q.payload, Labels: q.labels}); err != nil {
			return crashedOr(err)
		}
	}
	rep.ClockEnd = st.busyUntil
	if err := sink.append(st, durable.Record{Kind: durable.KindComplete, Tick: rep.ClockEnd}); err != nil {
		return crashedOr(err)
	}
	st.completed = true
	return finishTenant(cfg, st, sink)
}

// finishTenant runs the post-drain epilogue: fingerprint capture, the
// telemetry flush that ends the shutdown protocol, and the final snapshot.
func finishTenant(cfg TenantConfig, st *tenantState, sink *walSink) (*TenantReport, error) {
	rep := st.rep
	rep.Fingerprint = cfg.Driver.Fingerprint()
	if m := cfg.Metrics; m != nil {
		m.Add(telemetry.CtrServeAdmitted, int64(rep.Admitted))
		m.Add(telemetry.CtrServeProcessed, int64(rep.Processed))
		m.Add(telemetry.CtrServeDenied, int64(rep.Denied))
		m.Add(telemetry.CtrServeShed, int64(rep.Shed))
		m.Add(telemetry.CtrServeDrained, int64(rep.Drained))
		m.Add(telemetry.CtrServeAbandoned, int64(rep.Abandoned))
		m.Add(telemetry.CtrServeReloads, int64(rep.Reloads))
		m.Add(telemetry.CtrServeViolations, int64(rep.Violations))
	}
	if sink != nil {
		if err := sink.snapshot(st); err != nil {
			if errors.Is(err, faults.ErrCrash) {
				rep.Crashed = true
				return rep, nil
			}
			return nil, err
		}
	}
	return rep, nil
}
