package serve

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"turnstile/internal/durable"
	"turnstile/internal/telemetry"
	"turnstile/internal/workload"
)

// busyTenant is a stub tenant config that exercises every state machine
// path — denials, lag shedding, reload, drain, abandonment.
func busyTenant(name string) TenantConfig {
	return TenantConfig{
		Name:     name,
		Quota:    Quota{MaxQueue: 4, MaxLagTicks: 8, DrainBudget: 1},
		Arrivals: at(0, 1, 2, 3, 15, 30, 60, 61, 62, 63, 64, 65),
		Reloads:  []PolicyReload{{BeforeMsg: 2, PolicyJSON: "p2"}},
		Driver:   &stubDriver{steps: 18000},
	}
}

func renderOne(t *testing.T, rep *TenantReport) string {
	t.Helper()
	r := &Report{Tenants: []*TenantReport{rep}}
	var b strings.Builder
	b.WriteString(r.Render())
	fmt.Fprintf(&b, "dlq=%+v\nlat=%v\nfp=%s", rep.DLQ, rep.Latencies, rep.Fingerprint)
	return b.String()
}

// TestDurableUninterruptedMatchesPlain: running the demo fleet durably —
// WAL, snapshots, payload labelling and all — must not change a single
// byte of the report or any fingerprint versus the plain path. The
// durability layer observes the simulation; it never steers it.
func TestDurableUninterruptedMatchesPlain(t *testing.T) {
	run := func(store durable.Store) string {
		fleet, err := DemoFleet(3, 15, 42, DefaultQuota(), 30)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := (&Server{Tenants: fleet, Store: store}).Run(2)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		b.WriteString(rep.Render())
		for _, tr := range rep.Tenants {
			b.WriteString(tr.Fingerprint)
		}
		return b.String()
	}
	plain := run(nil)
	durableRun := run(durable.NewMemStore())
	if plain != durableRun {
		t.Fatalf("durable run diverged from plain run:\n--- plain\n%s\n--- durable\n%s", plain, durableRun)
	}
}

// TestCrashRecoveryAtEveryBoundary kills a tenant after every single WAL
// record boundary, recovers on the surviving store with a fresh driver,
// and requires the resumed account — counters, latencies, DLQ and
// fingerprint — byte-identical to the run that never crashed.
func TestCrashRecoveryAtEveryBoundary(t *testing.T) {
	baseStore := durable.NewMemStore()
	baseRep, err := RunTenantDurable(busyTenant("t"), baseStore, 0)
	if err != nil {
		t.Fatal(err)
	}
	if baseRep.Crashed || baseRep.Poisoned {
		t.Fatalf("baseline crashed=%v poisoned=%v", baseRep.Crashed, baseRep.Poisoned)
	}
	// the baseline must exercise every path or the sweep proves little
	if baseRep.Denied == 0 || baseRep.Shed == 0 || baseRep.Drained == 0 || baseRep.Abandoned == 0 || baseRep.Reloads == 0 {
		t.Fatalf("baseline too tame: %+v", baseRep)
	}
	baseline := renderOne(t, baseRep)
	boundaries := baseStore.Syncs() // one sync per WAL record
	if boundaries < 10 {
		t.Fatalf("only %d record boundaries, expected a richer trace", boundaries)
	}
	for k := 1; k <= boundaries; k++ {
		store := durable.NewMemStore()
		store.CrashAfterSyncs = k
		rep, err := RunTenantDurable(busyTenant("t"), store, 0)
		if err != nil {
			t.Fatalf("boundary %d: crash run: %v", k, err)
		}
		if !rep.Crashed {
			t.Fatalf("boundary %d: run did not crash", k)
		}
		store.Crash() // drop the page cache, as process death would
		store.CrashAfterSyncs = 0
		rec, err := RunTenantDurable(busyTenant("t"), store, 0)
		if err != nil {
			t.Fatalf("boundary %d: recovery: %v", k, err)
		}
		if rec.Crashed || rec.Poisoned {
			t.Fatalf("boundary %d: recovered crashed=%v poisoned=%v (%s)", k, rec.Crashed, rec.Poisoned, rec.PoisonReason)
		}
		if got := renderOne(t, rec); got != baseline {
			t.Fatalf("boundary %d: recovered account diverged:\n--- baseline\n%s\n--- recovered\n%s", k, baseline, got)
		}
	}
}

// TestCorruptWALSuffixRecoversPoisoned flips one byte near the start of a
// completed tenant's WAL. Recovery must come back poisoned — and because
// almost no verified history survives, the restarted tenant re-serves its
// trace with the latch armed: messages process, but not one sink write
// happens. Fail-closed, never silently clean.
func TestCorruptWALSuffixRecoversPoisoned(t *testing.T) {
	cfg := func(d Driver) TenantConfig {
		arr := make([]workload.Arrival, 6)
		for i := range arr {
			arr[i] = workload.Arrival{Tick: int64(i * 50), Payload: fmt.Sprintf("person%d:E%d", i, i)}
		}
		return TenantConfig{Name: "ct", Quota: Quota{DrainBudget: -1}, Arrivals: arr, Driver: d}
	}
	store := durable.NewMemStore()
	first, err := RunTenantDurable(cfg(newCorpusDriver(t)), store, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.OK == 0 {
		t.Fatalf("baseline served nothing cleanly: %+v", first)
	}
	// the baseline's admit records must carry the policy's label estimate
	data, _ := store.ReadFile("ct.wal")
	recs, v := durable.DecodeRecords(data)
	if !v.Clean {
		t.Fatalf("baseline WAL not clean: %+v", v)
	}
	var labeled bool
	for _, r := range recs {
		if r.Kind == durable.KindAdmit && len(r.Labels) > 0 {
			labeled = true
		}
	}
	if !labeled {
		t.Fatal("no admit record carries DIFT labels")
	}
	// flip a byte inside the first record: the whole history is
	// unverifiable from the start
	data[12] ^= 0x20
	if err := store.WriteFile("ct.wal", data); err != nil {
		t.Fatal(err)
	}
	d2 := newCorpusDriver(t)
	rec, err := RunTenantDurable(cfg(d2), store, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Poisoned || !strings.Contains(rec.PoisonReason, "unverifiable") {
		t.Fatalf("corrupt suffix not poisoned: poisoned=%v reason=%q", rec.Poisoned, rec.PoisonReason)
	}
	if rec.Processed == 0 {
		t.Fatal("poisoned tenant served nothing — expected it to run with sinks denied")
	}
	if rec.OK != 0 {
		t.Fatalf("poisoned tenant produced %d clean outcomes", rec.OK)
	}
	if w := d2.SinkWrites(); w != 0 {
		t.Fatalf("poisoned tenant performed %d sink writes after restart", w)
	}
	if r := (&Report{Tenants: []*TenantReport{rec}}).Render(); !strings.Contains(r, "poisoned: ct[") {
		t.Fatalf("render does not flag the poisoned tenant:\n%s", r)
	}
	// the poison decision itself is durable: a second restart restores the
	// latch from the WAL's poison record without re-diagnosing
	d3 := newCorpusDriver(t)
	again, err := RunTenantDurable(cfg(d3), store, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Poisoned || d3.SinkWrites() != 0 {
		t.Fatalf("second restart: poisoned=%v sinks=%d", again.Poisoned, d3.SinkWrites())
	}
}

// TestSnapshotAheadOfWALPoisons: a verified snapshot claiming more records
// than the surviving WAL proves the log lost a verified suffix — the
// tenant restarts poisoned even though every surviving byte checksums
// clean.
func TestSnapshotAheadOfWALPoisons(t *testing.T) {
	store := durable.NewMemStore()
	if err := durable.WriteSnapshot(store, "t.snap", durable.Snapshot{Seq: 999}); err != nil {
		t.Fatal(err)
	}
	rep, err := RunTenantDurable(busyTenant("t"), store, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Poisoned || !strings.Contains(rep.PoisonReason, "snapshot covers wal seq 999") {
		t.Fatalf("snapshot-ahead not poisoned: %+v", rep)
	}
}

// TestLatencyPQuantileBounds is the property test for the percentile
// accessor: for any sample set and any p — including p≤0, p≥1, NaN and
// the empty and single-sample sets — the result is a member of the set,
// within [min,max], with the extremes pinned. No index arithmetic escapes.
func TestLatencyPQuantileBounds(t *testing.T) {
	if (&TenantReport{}).LatencyP(0.5) != 0 {
		t.Fatal("empty sample set must yield 0")
	}
	single := &TenantReport{Latencies: []int64{17}}
	for _, p := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := single.LatencyP(p); got != 17 {
			t.Fatalf("single sample, p=%v: got %d", p, got)
		}
	}
	rng := rand.New(rand.NewSource(7))
	probes := []float64{-10, -0.01, 0, 0.25, 0.5, 0.75, 0.99, 1, 1.01, 100, math.NaN(), math.Inf(1), math.Inf(-1)}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		r := &TenantReport{Latencies: make([]int64, n)}
		min, max := int64(math.MaxInt64), int64(math.MinInt64)
		members := make(map[int64]bool, n)
		for i := range r.Latencies {
			v := int64(rng.Intn(10000)) - 500
			r.Latencies[i] = v
			members[v] = true
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		for _, p := range probes {
			got := r.LatencyP(p)
			if !members[got] {
				t.Fatalf("trial %d p=%v: %d is not a sample member", trial, p, got)
			}
			if got < min || got > max {
				t.Fatalf("trial %d p=%v: %d outside [%d,%d]", trial, p, got, min, max)
			}
		}
		if r.LatencyP(0) != min || r.LatencyP(-3) != min || r.LatencyP(math.NaN()) != min {
			t.Fatalf("trial %d: p≤0/NaN must pin the minimum", trial)
		}
		if r.LatencyP(1) != max || r.LatencyP(5) != max {
			t.Fatalf("trial %d: p≥1 must pin the maximum", trial)
		}
	}
}

// TestDrainOrderingDeterministicAcrossWorkers: a fleet shut down with
// multiple tenants mid-queue must dead-letter in the same sequence and
// flush the same telemetry at -parallel 1 and 8. The DLQ order and the
// counter flush are part of the deterministic account, not scheduler
// luck.
func TestDrainOrderingDeterministicAcrossWorkers(t *testing.T) {
	build := func() ([]TenantConfig, []*telemetry.Metrics) {
		var fleet []TenantConfig
		var ms []*telemetry.Metrics
		for i := 0; i < 5; i++ {
			cfg := busyTenant(fmt.Sprintf("t%d", i))
			// stagger the traces so every tenant ends with a distinct queue
			cfg.Arrivals = at(0, 1, 2, 3, 4, 5, 6, 7, int64(50+i), int64(51+i), int64(52+i), int64(53+i))
			cfg.Quota = Quota{MaxQueue: 6, MaxLagTicks: 9, DrainBudget: 2}
			m := telemetry.NewMetrics()
			cfg.Metrics = m
			fleet = append(fleet, cfg)
			ms = append(ms, m)
		}
		return fleet, ms
	}
	account := func(parallel int) string {
		fleet, ms := build()
		rep, err := (&Server{Tenants: fleet}).Run(parallel)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		b.WriteString(rep.Render())
		for i, tr := range rep.Tenants {
			if tr.Abandoned == 0 {
				t.Fatalf("tenant %s had nothing mid-queue at shutdown; test is vacuous", tr.Name)
			}
			fmt.Fprintf(&b, "%s dlq", tr.Name)
			for _, d := range tr.DLQ {
				fmt.Fprintf(&b, " %d:%s@%d", d.Idx, d.Reason, d.Arrival)
			}
			b.WriteByte('\n')
			fmt.Fprintf(&b, "%s metrics %v\n", tr.Name, ms[i].CountersWithPrefix("serve."))
		}
		return b.String()
	}
	if a, b := account(1), account(8); a != b {
		t.Fatalf("drain account diverged across worker counts:\n--- parallel=1\n%s\n--- parallel=8\n%s", a, b)
	}
}
