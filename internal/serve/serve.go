// Package serve is the multi-tenant flow-hosting daemon: the long-lived
// counterpart of the one-shot harness batches, hosting many deployed
// privacy-managed applications for many tenants concurrently on the
// virtual clock.
//
// Isolation is structural, not scheduled: every tenant owns a complete
// private universe — interpreter, DIFT tracker, policy namespace, guard
// budget, virtual clock, dead-letter queue — and no object crosses a
// tenant boundary. The daemon therefore needs no cross-tenant locking,
// and a hostile tenant (crash corpus, attack corpus, budget bombs) can
// degrade only itself: its neighbours' sink traces, violation sets,
// latency distributions and shed counts are byte-identical to what each
// would produce running alone, at any worker count. The isolation battery
// in internal/harness proves exactly that by byte comparison.
//
// Within a tenant, the daemon runs a deterministic single-server FIFO
// queue on the tenant's virtual clock (the internal/workload model):
// messages arrive at generator-chosen ticks, wait in a bounded queue, and
// occupy the server for a service time derived from the interpreter steps
// the message actually consumed. Admission control rejects arrivals when
// the queue is at quota; load shedding dead-letters queued messages that
// have lagged too far behind the newest arrival; shutdown stops admitting,
// processes up to a drain budget, dead-letters the rest and flushes
// telemetry. All of it counts operations and virtual ticks — never wall
// time — so a fixed seed replays byte-identically.
package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"turnstile/internal/durable"
	"turnstile/internal/guard"
	"turnstile/internal/telemetry"
	"turnstile/internal/workload"
)

// StepsPerTick converts interpreter steps into virtual service ticks: a
// message that consumed S steps occupies the tenant's server for
// 1 + S/StepsPerTick ticks. One tick is one simulated millisecond, so the
// divisor plays the role of a CPU speed; what matters for the gates is
// that it is a fixed constant, making service times — and therefore every
// latency percentile — a pure function of the executed program.
const StepsPerTick = 2000

// OutcomeKind classifies one processed message.
type OutcomeKind string

const (
	// OutcomeOK: the message was processed without incident.
	OutcomeOK OutcomeKind = "ok"
	// OutcomeViolation: the IFC tracker recorded at least one policy
	// violation while processing the message (blocked when enforcing).
	OutcomeViolation OutcomeKind = "violation"
	// OutcomeBudget: a guard budget (fuel, depth, alloc, deadline) tripped.
	OutcomeBudget OutcomeKind = "budget"
	// OutcomeThrow: the application threw and nothing caught it.
	OutcomeThrow OutcomeKind = "throw"
	// OutcomeError: the runtime failed in a contained, typed way
	// (pipeline error, poisoned-tracker denial, ...).
	OutcomeError OutcomeKind = "error"
)

// Outcome reports how one message went and what it cost.
type Outcome struct {
	Kind   OutcomeKind
	Detail string
	// Steps is the interpreter steps the message consumed — the service
	// cost the queue simulation turns into busy ticks.
	Steps int64
}

// Driver processes one tenant's messages on that tenant's private
// universe. Implementations must be deterministic: the outcome of
// Process(i, payload) may depend only on the construction arguments and
// the history of prior calls, never on wall time, goroutine identity or
// map iteration order — that is what makes tenant fingerprints
// byte-comparable across solo and mixed runs.
type Driver interface {
	// Process handles one admitted message.
	Process(i int, payload string) Outcome
	// Reload atomically swaps the tenant's policy. It is only ever called
	// between messages, which on a single-threaded universe is all the
	// atomicity there is.
	Reload(policyJSON string) error
	// Fingerprint returns the tenant's full observable record so far: the
	// sink trace and the violation set, chaos-report style.
	Fingerprint() string
}

// Quota bounds one tenant's share of the daemon.
type Quota struct {
	// MaxQueue is the admission bound: a new arrival is denied while the
	// tenant's depth (queued + in service) is at or over this. Zero or
	// negative means unbounded.
	MaxQueue int
	// MaxLagTicks is the shedding bound: a queued message whose arrival
	// lags more than this behind the newest arrival is dead-lettered
	// instead of served — fresher data has overtaken it. Zero or negative
	// disables shedding.
	MaxLagTicks int64
	// DrainBudget is how many queued messages the shutdown drain may still
	// process; the rest are dead-lettered. Negative means drain everything.
	DrainBudget int
}

// DefaultQuota is the serve demo posture: small queue, aggressive
// shedding, a polite drain.
func DefaultQuota() Quota { return Quota{MaxQueue: 8, MaxLagTicks: 2000, DrainBudget: 4} }

// PolicyReload schedules a hot policy swap: before admitting the message
// with arrival index BeforeMsg, the tenant's policy is atomically
// replaced. Neighbours are untouched — policies are per-tenant state.
type PolicyReload struct {
	BeforeMsg  int
	PolicyJSON string
}

// TenantConfig declares one hosted tenant.
type TenantConfig struct {
	Name     string
	Quota    Quota
	Arrivals []workload.Arrival
	Reloads  []PolicyReload
	Driver   Driver
	// Metrics, when non-nil, receives the serve.* counters at drain time
	// (the telemetry flush of the shutdown protocol).
	Metrics *telemetry.Metrics
}

// ShedMsg is one dead-lettered message in a tenant's DLQ.
type ShedMsg struct {
	// Idx is the message's arrival index.
	Idx int
	// Arrival is its arrival tick.
	Arrival int64
	// Reason is "lag" (overtaken in queue) or "shutdown" (abandoned by the
	// drain).
	Reason string
	// Payload is the shed payload, kept so a DLQ replay can re-drive it.
	Payload string
	// Labels is the admission-time DIFT label estimate, attached when the
	// daemon runs durably — dead letters stay labeled across restarts.
	Labels []string
	// Replayed marks a persisted dead letter already re-driven once by
	// `turnstile dlq -replay`; the replay marker in the WAL refuses a
	// second drive.
	Replayed bool
}

// TenantReport is one tenant's complete, deterministic account.
type TenantReport struct {
	Name string

	Admitted  int // arrivals accepted into the queue
	Processed int // messages actually served (including drained)
	Denied    int // arrivals rejected by admission control
	Shed      int // queued messages dead-lettered for lag
	Drained   int // messages served by the shutdown drain
	Abandoned int // queued messages dead-lettered at shutdown
	Reloads   int // hot policy swaps applied

	OK         int
	Violations int
	Budget     int
	Throws     int
	Errors     int

	// ClockEnd is the tick the tenant's server went idle for good.
	ClockEnd int64
	// Latencies holds finish−arrival for every processed message, in
	// completion order.
	Latencies []int64
	// DLQ is the tenant's dead-letter queue, in shed order.
	DLQ []ShedMsg
	// Fingerprint is the driver's observable record (sink trace +
	// violations) — the byte-compared isolation artifact.
	Fingerprint string

	// Poisoned reports that recovery could not verify this tenant's
	// durable state (torn or corrupt WAL suffix, damaged snapshot, replay
	// divergence) and restarted it fail-closed with sinks denied.
	Poisoned bool
	// PoisonReason says what recovery found.
	PoisonReason string
	// Crashed reports this run ended in a (simulated) process death; the
	// report holds whatever had happened up to the crash and the durable
	// state holds what survived it.
	Crashed bool
}

// LatencyP returns the p-quantile of the latency distribution. The
// quantile is clamped into [0,1] and the derived rank into the sample
// bounds, so p≤0 is the minimum, p≥1 the maximum, and no argument —
// including NaN, which fails every comparison and lands on the minimum —
// can index out of range.
func (r *TenantReport) LatencyP(p float64) int64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	if !(p > 0) {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	sorted := append([]int64(nil), r.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Throughput returns sustained messages per simulated second (one virtual
// tick is one millisecond).
func (r *TenantReport) Throughput() float64 {
	if r.ClockEnd <= 0 {
		return 0
	}
	return float64(r.Processed) * 1000 / float64(r.ClockEnd)
}

// Server hosts a fleet of tenants.
type Server struct {
	Tenants []TenantConfig
	// Store, when non-nil, makes every tenant durable: each owns a
	// checksummed WAL and snapshot in the store, recovery runs before the
	// first message, and a crash (faults.ErrCrash from the store) is
	// contained to a Crashed report instead of an error.
	Store durable.Store
	// SnapshotEvery overrides the snapshot cadence in WAL records; zero
	// means the default.
	SnapshotEvery int
}

// Report is the whole daemon's account, tenant order preserved.
type Report struct {
	Tenants []*TenantReport
}

// Run hosts every tenant to completion — including the shutdown drain —
// fanning tenants across up to parallel workers. Tenants are the unit of
// parallelism and share no state, so the report is byte-identical at any
// worker count: results land in index-addressed slots and each tenant's
// simulation is single-threaded. A panic inside a tenant is contained to
// a typed error naming it.
func (s *Server) Run(parallel int) (*Report, error) {
	if parallel < 1 {
		parallel = 1
	}
	n := len(s.Tenants)
	reps := make([]*TenantReport, n)
	errs := make([]error, n)
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = guard.Contain("serve", s.Tenants[i].Name, func() error {
				var r *TenantReport
				var err error
				if s.Store != nil {
					r, err = RunTenantDurable(s.Tenants[i], s.Store, s.SnapshotEvery)
				} else {
					r, err = RunTenant(s.Tenants[i])
				}
				reps[i] = r
				return err
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %s: %w", s.Tenants[i].Name, err)
		}
	}
	return &Report{Tenants: reps}, nil
}

// Render writes the deterministic per-tenant summary table the soak gates
// byte-compare.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %8s %7s %6s %7s %9s %7s %7s %8s\n",
		"tenant", "admitted", "processed", "denied", "shed", "drained", "abandoned", "p50", "p99", "msg/s")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "%-22s %8d %8d %7d %6d %7d %9d %7d %7d %8.1f\n",
			t.Name, t.Admitted, t.Processed, t.Denied, t.Shed, t.Drained, t.Abandoned,
			t.LatencyP(0.50), t.LatencyP(0.99), t.Throughput())
	}
	fmt.Fprintf(&b, "outcomes:")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, " %s[ok=%d viol=%d budget=%d throw=%d err=%d reloads=%d]",
			t.Name, t.OK, t.Violations, t.Budget, t.Throws, t.Errors, t.Reloads)
	}
	b.WriteByte('\n')
	// recovery flags are trailing lines, emitted only when present, so a
	// clean fleet's render stays byte-identical to the pre-durable format
	var poisoned, crashed []string
	for _, t := range r.Tenants {
		if t.Poisoned {
			poisoned = append(poisoned, fmt.Sprintf("%s[%s]", t.Name, t.PoisonReason))
		}
		if t.Crashed {
			crashed = append(crashed, t.Name)
		}
	}
	if len(poisoned) > 0 {
		fmt.Fprintf(&b, "poisoned: %s\n", strings.Join(poisoned, " "))
	}
	if len(crashed) > 0 {
		fmt.Fprintf(&b, "crashed: %s\n", strings.Join(crashed, " "))
	}
	return b.String()
}
