package serve

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"turnstile/internal/core"
	"turnstile/internal/dift"
	"turnstile/internal/guard"
	"turnstile/internal/instrument"
	"turnstile/internal/interp"
	"turnstile/internal/policy"
)

// AppConfig declares the privacy-managed application one tenant hosts.
type AppConfig struct {
	Name string
	// Sources maps file name → MiniJS source (the tenant's application).
	Sources map[string]string
	// PolicyJSON is the tenant's IFC policy namespace.
	PolicyJSON string
	// SourceName is the interpreter I/O source arrivals are emitted into.
	SourceName string
	// Event is the source event name; empty means "data".
	Event string
	// Enforce blocks violating flows; false audits them (§6.2 posture).
	Enforce bool
	// FailClosed puts the tracker in fail-closed mode. Note that the
	// poison latch is sticky across messages by design: a fail-closed
	// tenant that trips a budget stays degraded until redeployed.
	FailClosed bool
	// Limits, when non-nil, is the tenant's guard budget. The budget is an
	// epoch per message: the daemon resets it before each Process, so one
	// hostile message cannot starve the messages after it.
	Limits *guard.Limits
	// Exhaustive switches to exhaustive instrumentation.
	Exhaustive bool
}

// AppDriver is the standard Driver: one core.Manage universe per tenant,
// one Emit per message, guard budgets reset between messages.
type AppDriver struct {
	app            *core.ManagedApp
	cfg            AppConfig
	seenViolations int
}

// NewAppDriver deploys the tenant's application through the full
// Turnstile pipeline (analyze → instrument → deploy).
func NewAppDriver(cfg AppConfig) (*AppDriver, error) {
	copts := core.DefaultOptions()
	copts.Enforce = cfg.Enforce
	copts.FailClosed = cfg.FailClosed
	copts.Guard = cfg.Limits
	if cfg.Exhaustive {
		copts.Mode = instrument.Exhaustive
	}
	app, err := core.Manage(cfg.Sources, cfg.PolicyJSON, copts)
	if err != nil {
		return nil, fmt.Errorf("serve: deploying tenant app %s: %w", cfg.Name, err)
	}
	if cfg.Event == "" {
		cfg.Event = "data"
	}
	if _, ok := app.IP.Source(cfg.SourceName); !ok {
		return nil, fmt.Errorf("serve: tenant app %s: source %q not registered (have %v)",
			cfg.Name, cfg.SourceName, app.IP.SourceNames())
	}
	return &AppDriver{app: app, cfg: cfg}, nil
}

// App exposes the deployed universe (tests and the CLI inspect it).
func (d *AppDriver) App() *core.ManagedApp { return d.app }

// Process feeds one message into the application's source and classifies
// what happened. The guard budget — fuel, alloc, depth, and a rebased
// deadline window — is a fresh epoch per message.
func (d *AppDriver) Process(i int, payload string) Outcome {
	d.app.Guard.Reset()
	before := d.app.IP.Steps()
	err := d.app.Emit(d.cfg.SourceName, d.cfg.Event, payload)
	out := Outcome{Steps: d.app.IP.Steps() - before}
	nv := len(d.app.Tracker.Violations())
	sawViolation := nv > d.seenViolations
	d.seenViolations = nv
	switch {
	case err == nil && !sawViolation:
		out.Kind = OutcomeOK
	case err == nil:
		out.Kind = OutcomeViolation
	default:
		out.Kind, out.Detail = classifyProcessError(err, sawViolation)
	}
	return out
}

// classifyProcessError maps an Emit error onto an OutcomeKind, mirroring
// the crash harness's typed-termination taxonomy.
func classifyProcessError(err error, sawViolation bool) (OutcomeKind, string) {
	var be *guard.BudgetError
	if errors.As(err, &be) {
		return OutcomeBudget, be.Error()
	}
	var throw *interp.Throw
	if errors.As(err, &throw) {
		msg := firstLine(throw.Error())
		if sawViolation || strings.Contains(msg, "PrivacyViolation") {
			return OutcomeViolation, msg
		}
		return OutcomeThrow, msg
	}
	if sawViolation {
		return OutcomeViolation, firstLine(err.Error())
	}
	return OutcomeError, firstLine(err.Error())
}

// Reload hot-swaps the tenant's policy. The instrumentation stays: the
// injection sites compiled into the deployed code keep referring to
// labellers by name, so the new policy must define the labellers the old
// one injected (validated here by compiling the new document). Rules,
// labeller bodies, declassifiers and CNF structure all take effect on the
// next message.
func (d *AppDriver) Reload(policyJSON string) error {
	pol, err := policy.ParseJSON([]byte(policyJSON), d.app.IP.CompileLabelFunc)
	if err != nil {
		return fmt.Errorf("serve: reload for %s: %w", d.cfg.Name, err)
	}
	for _, inj := range d.app.Policy.Injections {
		if _, ok := pol.Labellers[inj.Labeller]; !ok {
			return fmt.Errorf("serve: reload for %s: new policy drops labeller %q still referenced by deployed injection sites",
				d.cfg.Name, inj.Labeller)
		}
	}
	d.app.Tracker.SwapPolicy(pol)
	d.app.Policy = pol
	return nil
}

// Fingerprint renders the tenant's observable record — the chaos-report
// sink trace followed by the violation set — the byte-compared isolation
// artifact.
func (d *AppDriver) Fingerprint() string {
	var b strings.Builder
	for _, w := range d.app.IP.IO.Writes {
		fmt.Fprintf(&b, "%s.%s %s %v\n", w.Module, w.Op, w.Target, w.Value)
	}
	for _, v := range d.app.Tracker.Violations() {
		fmt.Fprintf(&b, "violation %s\n", v.Error())
	}
	return b.String()
}

// PayloadLabels implements StateProber: the admission-time DIFT label
// estimate for one payload, computed by evaluating the leaf label
// functions of every labeller the policy injects. This is the label set a
// message would carry the moment instrumentation attaches it — recorded
// with each admit and shed so persisted dead letters stay labeled across
// restarts. Evaluation happens between messages and is side-effect free
// for the queue simulation: the guard budget is reset at each Process and
// the step window is measured inside Process only.
func (d *AppDriver) PayloadLabels(payload string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, inj := range d.app.Policy.Injections {
		for _, fn := range leafLabelFns(d.app.Policy.Labellers[inj.Labeller]) {
			for _, lab := range safeLabelEval(fn, payload).Slice() {
				if !seen[string(lab)] {
					seen[string(lab)] = true
					out = append(out, string(lab))
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// leafLabelFns collects the value label functions of a (possibly nested)
// labeller in deterministic order. $invoke labellers are skipped — their
// labels exist only at call time, not for a payload.
func leafLabelFns(l *policy.Labeller) []policy.LabelFunc {
	if l == nil {
		return nil
	}
	var fns []policy.LabelFunc
	if l.Fn != nil {
		fns = append(fns, l.Fn)
	}
	fns = append(fns, leafLabelFns(l.Map)...)
	names := make([]string, 0, len(l.Props))
	for n := range l.Props {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fns = append(fns, leafLabelFns(l.Props[n])...)
	}
	return fns
}

// safeLabelEval evaluates one label function on a payload, treating any
// error or panic as "no labels" — an estimate must never take the tenant
// down.
func safeLabelEval(fn policy.LabelFunc, payload string) (ls policy.LabelSet) {
	defer func() {
		if recover() != nil {
			ls = nil
		}
	}()
	ls, err := fn(payload)
	if err != nil {
		return nil
	}
	return ls
}

// PoisonState implements StateProber.
func (d *AppDriver) PoisonState() (bool, string) { return d.app.Tracker.Degraded() }

// RestorePoison implements StateProber: re-arm the sticky degraded latch
// fail-closed, the recovery rule for unverifiable durable state.
func (d *AppDriver) RestorePoison(reason string) {
	d.app.Tracker.RestorePoison(dift.PoisonState{Degraded: true, Reason: reason})
}

// SinkWrites implements StateProber.
func (d *AppDriver) SinkWrites() int { return len(d.app.IP.IO.Writes) }

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
