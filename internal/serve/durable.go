package serve

import (
	"encoding/json"
	"errors"
	"fmt"

	"turnstile/internal/durable"
	"turnstile/internal/faults"
)

// StateProber is the optional Driver extension the durable layer uses to
// carry IFC state through the store. A driver that implements it gets its
// payloads labeled at admission (so dead letters stay labeled across
// restarts), its poison latch exported into the WAL and restored
// fail-closed on recovery, and its sink-write count exposed so the
// crash-recovery battery can prove a poisoned tenant never served a sink.
type StateProber interface {
	// PayloadLabels returns the DIFT label estimate for one source payload
	// — the labels the policy's injection labellers would attach to it —
	// sorted and deduplicated.
	PayloadLabels(payload string) []string
	// PoisonState reports whether the tenant's tracker is degraded, and why.
	PoisonState() (bool, string)
	// RestorePoison re-arms the degraded latch fail-closed (sinks denied
	// even for a tenant configured fail-open) — the recovery rule for
	// unverifiable durable state.
	RestorePoison(reason string)
	// SinkWrites returns how many sink writes the tenant has performed.
	SinkWrites() int
}

// defaultSnapshotEvery is the snapshot cadence in WAL records.
const defaultSnapshotEvery = 16

// walSink couples one tenant's WAL, snapshot file and prober. A nil sink
// is a valid no-op (the non-durable path), so the state machine logs
// unconditionally.
type walSink struct {
	wal       *durable.WAL
	store     durable.Store
	snapName  string
	snapEvery int
	probe     StateProber
	sinceSnap int
}

func (s *walSink) prober() StateProber {
	if s == nil {
		return nil
	}
	return s.probe
}

// append logs one record (synced before return) and takes the periodic
// snapshot when the cadence comes due.
func (s *walSink) append(st *tenantState, rec durable.Record) error {
	if s == nil {
		return nil
	}
	if err := s.wal.Append(rec); err != nil {
		return err
	}
	s.sinceSnap++
	if s.snapEvery > 0 && s.sinceSnap >= s.snapEvery {
		s.sinceSnap = 0
		return s.snapshot(st)
	}
	return nil
}

// tenantProgress is the snapshot State payload: the counter block of the
// report at capture time. It is an observability artifact and a
// cross-check anchor; replay never trusts it for state.
type tenantProgress struct {
	Admitted  int `json:"admitted"`
	Processed int `json:"processed"`
	Denied    int `json:"denied"`
	Shed      int `json:"shed"`
	Drained   int `json:"drained"`
	Abandoned int `json:"abandoned"`
	Reloads   int `json:"reloads"`
	Queued    int `json:"queued"`
}

// snapshot atomically replaces the tenant's snapshot file with the current
// position. The snapshot's Seq pins how many WAL records the state covers
// — the fail-closed cross-check against a WAL that lost a verified suffix.
func (s *walSink) snapshot(st *tenantState) error {
	if s == nil {
		return nil
	}
	rep := st.rep
	state, err := json.Marshal(tenantProgress{
		Admitted: rep.Admitted, Processed: rep.Processed, Denied: rep.Denied,
		Shed: rep.Shed, Drained: rep.Drained, Abandoned: rep.Abandoned,
		Reloads: rep.Reloads, Queued: len(st.queue),
	})
	if err != nil {
		return err
	}
	return durable.WriteSnapshot(s.store, s.snapName, durable.Snapshot{
		Seq: s.wal.Seq(), Tick: st.busyUntil, State: state,
	})
}

// WALName and SnapName are the per-tenant store file names.
func WALName(tenant string) string  { return tenant + ".wal" }
func SnapName(tenant string) string { return tenant + ".snap" }

// RunTenantDurable is the durable twin of RunTenant: recover whatever the
// store holds for this tenant, then continue the state machine with every
// transition logged. The recovery rule is fail-closed: any unverifiable
// durable state — torn or corrupt WAL suffix, damaged snapshot, a snapshot
// covering more records than the surviving WAL, or a replay that diverges
// from its commit records — restarts the tenant poisoned with sinks
// denied, never silently clean. A clean prefix recovers exactly: the
// driver universe is rebuilt by replaying the recorded history through the
// same deterministic driver, so taint is re-derived, not resurrected from
// bytes, and the resumed run is byte-identical to one that never crashed.
func RunTenantDurable(cfg TenantConfig, store durable.Store, snapEvery int) (*TenantReport, error) {
	if store == nil {
		return RunTenant(cfg)
	}
	if snapEvery <= 0 {
		snapEvery = defaultSnapshotEvery
	}
	reloads, err := validateTenant(cfg)
	if err != nil {
		return nil, err
	}
	st := newTenantState(cfg.Name)
	rep := st.rep
	crashedOr := func(err error) (*TenantReport, error) {
		if errors.Is(err, faults.ErrCrash) {
			rep.Crashed = true
			return rep, nil
		}
		return nil, err
	}

	walName, snapName := WALName(cfg.Name), SnapName(cfg.Name)
	data, err := store.ReadFile(walName)
	if err != nil {
		return crashedOr(err)
	}
	recs, verdict := durable.DecodeRecords(data)
	snap, snapOK, snapDamaged, err := durable.ReadSnapshot(store, snapName)
	if err != nil {
		return crashedOr(err)
	}

	lastSeq := 0
	if len(recs) > 0 {
		lastSeq = recs[len(recs)-1].Seq
	}
	poisonReason := ""
	switch {
	case !verdict.Clean:
		poisonReason = "wal suffix unverifiable: " + verdict.Reason
	case snapDamaged:
		poisonReason = "snapshot unverifiable"
	case snapOK && snap.Seq > lastSeq:
		poisonReason = fmt.Sprintf("snapshot covers wal seq %d but wal ends at %d", snap.Seq, lastSeq)
	}
	if !verdict.Clean {
		// drop the unverifiable suffix so the resumed log decodes; the
		// verified history is kept whole — replay needs it
		if err := store.WriteFile(walName, data[:verdict.Verified]); err != nil {
			return crashedOr(err)
		}
	}

	prober, _ := cfg.Driver.(StateProber)
	res := replayRecords(cfg, st, recs, prober)
	if res.err != nil {
		return nil, res.err
	}
	if poisonReason == "" {
		poisonReason = res.divergence
	}

	sink := &walSink{
		wal:   durable.ResumeWAL(store, walName, lastSeq),
		store: store, snapName: snapName, snapEvery: snapEvery, probe: prober,
	}

	if poisonReason != "" {
		// fail-closed recovery: latch the tenant before it serves anything
		rep.Poisoned = true
		rep.PoisonReason = poisonReason
		st.poisonLogged = true
		if prober != nil {
			prober.RestorePoison(poisonReason)
		}
		if err := sink.append(st, durable.Record{Kind: durable.KindPoison, Reason: poisonReason, Degraded: true}); err != nil {
			return crashedOr(err)
		}
	} else if res.restored != "" {
		// a previous recovery poisoned this tenant; the latch was restored
		// during replay and the record already sits in the WAL
		rep.Poisoned = true
		rep.PoisonReason = res.restored
		st.poisonLogged = true
	}

	if st.completed {
		// the tenant had finished before the restart; replay rebuilt its
		// full account, nothing is left to serve
		return finishTenant(cfg, st, sink)
	}
	return runMachine(cfg, st, reloads, sink)
}

// replayResult is what WAL replay learned beyond the rebuilt state.
type replayResult struct {
	// restored is the reason of a poison latch re-armed from a KindPoison
	// record that replayed processing did not re-derive (a previous
	// recovery's fail-closed decision).
	restored string
	// divergence is set when replay contradicts the WAL: a commit record's
	// outcome or busy horizon disagrees with re-processing, a queue pop
	// misses, or a recorded reload no longer applies. The log is verified
	// but the world changed — fail closed.
	divergence string
	err        error
}

// replayRecords folds the verified record prefix into st, re-driving the
// deterministic driver through the recorded history so the tenant's DIFT
// taint, violations and sink trace are re-derived rather than trusted from
// disk. Replay stops at the first divergence: past it the rebuilt state is
// not credible, and the caller poisons the tenant.
func replayRecords(cfg TenantConfig, st *tenantState, recs []durable.Record, prober StateProber) replayResult {
	rep := st.rep
	var res replayResult
	diverge := func(format string, args ...any) replayResult {
		res.divergence = fmt.Sprintf(format, args...)
		return res
	}
	popFront := func(rec durable.Record) (queuedMsg, bool) {
		if len(st.queue) == 0 || st.queue[0].idx != rec.Idx {
			return queuedMsg{}, false
		}
		q := st.queue[0]
		st.queue = st.queue[1:]
		return q, true
	}
	for _, rec := range recs {
		switch rec.Kind {
		case durable.KindAdmit:
			st.nextArrival = rec.Idx + 1
			rep.Admitted++
			st.queue = append(st.queue, queuedMsg{idx: rec.Idx, arrival: rec.Tick, payload: rec.Payload, labels: rec.Labels})
		case durable.KindDeny:
			st.nextArrival = rec.Idx + 1
			rep.Denied++
		case durable.KindShed:
			q, ok := popFront(rec)
			if !ok {
				return diverge("shed record %d does not match queue head", rec.Idx)
			}
			rep.Shed++
			rep.DLQ = append(rep.DLQ, ShedMsg{Idx: q.idx, Arrival: q.arrival, Reason: "lag", Payload: q.payload, Labels: q.labels})
		case durable.KindProcess:
			q, ok := popFront(rec)
			if !ok {
				return diverge("process record %d does not match queue head", rec.Idx)
			}
			out := cfg.Driver.Process(q.idx, q.payload)
			applyOutcome(st, q, out, rec.Drained)
			if st.busyUntil != rec.Busy || string(out.Kind) != rec.Outcome {
				return diverge("replay of message %d diverged: outcome %s busy %d, recorded %s busy %d",
					rec.Idx, out.Kind, st.busyUntil, rec.Outcome, rec.Busy)
			}
		case durable.KindReload:
			if err := cfg.Driver.Reload(rec.Policy); err != nil {
				return diverge("recorded reload before message %d no longer applies: %v", rec.Idx, err)
			}
			st.applied[rec.Idx] = true
			rep.Reloads++
		case durable.KindGuard:
			// audit record; the budget trip itself was re-derived by the
			// process replay above
		case durable.KindPoison:
			reason := rec.Reason
			if reason == "" {
				reason = "restored degraded state"
			}
			if prober != nil {
				if deg, _ := prober.PoisonState(); !deg {
					// processing did not re-derive this latch: it was a
					// recovery decision — re-arm it fail-closed, at this
					// position, so subsequent replayed messages see it
					prober.RestorePoison(reason)
					res.restored = reason
				}
			} else {
				res.restored = reason
			}
		case durable.KindAbandon:
			q, ok := popFront(rec)
			if !ok {
				return diverge("abandon record %d does not match queue head", rec.Idx)
			}
			rep.Abandoned++
			rep.DLQ = append(rep.DLQ, ShedMsg{Idx: q.idx, Arrival: q.arrival, Reason: "shutdown", Payload: q.payload, Labels: q.labels})
		case durable.KindComplete:
			st.completed = true
			rep.ClockEnd = rec.Tick
		case durable.KindReplay:
			// an operator re-drove this dead letter (turnstile dlq -replay);
			// re-process it so the taint its replay produced is re-derived,
			// and cross-check the recorded outcome like any commit record
			marked := false
			for j := range rep.DLQ {
				if rep.DLQ[j].Idx == rec.Idx && !rep.DLQ[j].Replayed {
					rep.DLQ[j].Replayed = true
					marked = true
					break
				}
			}
			if !marked {
				return diverge("replay record %d matches no dead letter", rec.Idx)
			}
			out := cfg.Driver.Process(rec.Idx, rec.Payload)
			if string(out.Kind) != rec.Outcome {
				return diverge("replay of dead letter %d diverged: outcome %s, recorded %s",
					rec.Idx, out.Kind, rec.Outcome)
			}
		default:
			return diverge("unknown record kind %q at seq %d", rec.Kind, rec.Seq)
		}
	}
	if prober != nil && !st.poisonLogged {
		if deg, _ := prober.PoisonState(); deg {
			// replay re-derived a natural degradation whose record is
			// already in the log — don't log it again on resume
			st.poisonLogged = true
		}
	}
	return res
}
