package serve

import (
	"fmt"
	"strings"
	"testing"

	"turnstile/internal/corpus"
	"turnstile/internal/workload"
)

// stubDriver is a deterministic Driver with a fixed per-message step cost.
type stubDriver struct {
	steps      int64
	failReload bool
	log        strings.Builder
}

func (d *stubDriver) Process(i int, payload string) Outcome {
	fmt.Fprintf(&d.log, "msg %d %s\n", i, payload)
	return Outcome{Kind: OutcomeOK, Steps: d.steps}
}

func (d *stubDriver) Reload(policyJSON string) error {
	if d.failReload {
		return fmt.Errorf("stub reload refused")
	}
	fmt.Fprintf(&d.log, "reload %s\n", policyJSON)
	return nil
}

func (d *stubDriver) Fingerprint() string { return d.log.String() }

func at(ticks ...int64) []workload.Arrival {
	out := make([]workload.Arrival, len(ticks))
	for i, t := range ticks {
		out[i] = workload.Arrival{Tick: t, Payload: fmt.Sprintf("p%d", i)}
	}
	return out
}

// TestAdmissionControlDeniesAtQuota hand-simulates a 5-message trace
// against a depth-2 queue: service is 5 ticks (8000 steps / 2000 + 1), so
// arrivals 2 and 3 find the server busy with one message queued and are
// denied.
func TestAdmissionControlDeniesAtQuota(t *testing.T) {
	rep, err := RunTenant(TenantConfig{
		Name:     "t",
		Quota:    Quota{MaxQueue: 2, DrainBudget: -1},
		Arrivals: at(0, 1, 2, 3, 20),
		Driver:   &stubDriver{steps: 8000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != 3 || rep.Processed != 3 || rep.Denied != 2 {
		t.Fatalf("admitted=%d processed=%d denied=%d, want 3/3/2", rep.Admitted, rep.Processed, rep.Denied)
	}
	if rep.Drained != 1 || rep.Abandoned != 0 || rep.Shed != 0 {
		t.Fatalf("drained=%d abandoned=%d shed=%d, want 1/0/0", rep.Drained, rep.Abandoned, rep.Shed)
	}
	if rep.ClockEnd != 25 {
		t.Fatalf("ClockEnd = %d, want 25", rep.ClockEnd)
	}
	if want := []int64{5, 9, 5}; len(rep.Latencies) != 3 ||
		rep.Latencies[0] != want[0] || rep.Latencies[1] != want[1] || rep.Latencies[2] != want[2] {
		t.Fatalf("latencies = %v, want %v", rep.Latencies, want)
	}
}

// TestLoadSheddingDeadLettersLaggards: with 10-tick service, messages 2
// and 3 are overtaken by arrival 4 (lag 13 and 12 > quota 5) and go to
// the DLQ with reason "lag" instead of being served stale.
func TestLoadSheddingDeadLettersLaggards(t *testing.T) {
	rep, err := RunTenant(TenantConfig{
		Name:     "t",
		Quota:    Quota{MaxLagTicks: 5, DrainBudget: -1},
		Arrivals: at(0, 1, 2, 3, 15),
		Driver:   &stubDriver{steps: 18000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != 5 || rep.Processed != 3 || rep.Shed != 2 || rep.Denied != 0 {
		t.Fatalf("admitted=%d processed=%d shed=%d denied=%d, want 5/3/2/0",
			rep.Admitted, rep.Processed, rep.Shed, rep.Denied)
	}
	if len(rep.DLQ) != 2 || rep.DLQ[0].Idx != 2 || rep.DLQ[1].Idx != 3 {
		t.Fatalf("DLQ = %+v, want messages 2 and 3", rep.DLQ)
	}
	for _, d := range rep.DLQ {
		if d.Reason != "lag" {
			t.Fatalf("DLQ reason = %q, want lag", d.Reason)
		}
	}
	if rep.ClockEnd != 30 {
		t.Fatalf("ClockEnd = %d, want 30", rep.ClockEnd)
	}
}

// TestDrainBudgetAbandonsTheRest: five simultaneous arrivals, a drain
// budget of one — the shutdown drain serves exactly one queued message
// and dead-letters the remaining three with reason "shutdown".
func TestDrainBudgetAbandonsTheRest(t *testing.T) {
	rep, err := RunTenant(TenantConfig{
		Name:     "t",
		Quota:    Quota{DrainBudget: 1},
		Arrivals: at(0, 0, 0, 0, 0),
		Driver:   &stubDriver{steps: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != 5 || rep.Processed != 2 || rep.Drained != 1 || rep.Abandoned != 3 {
		t.Fatalf("admitted=%d processed=%d drained=%d abandoned=%d, want 5/2/1/3",
			rep.Admitted, rep.Processed, rep.Drained, rep.Abandoned)
	}
	if len(rep.DLQ) != 3 {
		t.Fatalf("DLQ size = %d, want 3", len(rep.DLQ))
	}
	for i, d := range rep.DLQ {
		if d.Reason != "shutdown" || d.Idx != i+2 {
			t.Fatalf("DLQ[%d] = %+v, want shutdown of message %d", i, d, i+2)
		}
	}
}

// TestDrainEverythingWhenNegative: a negative drain budget finishes the
// whole queue.
func TestDrainEverythingWhenNegative(t *testing.T) {
	rep, err := RunTenant(TenantConfig{
		Name:     "t",
		Quota:    Quota{DrainBudget: -1},
		Arrivals: at(0, 0, 0, 0),
		Driver:   &stubDriver{steps: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Processed != 4 || rep.Abandoned != 0 {
		t.Fatalf("processed=%d abandoned=%d, want 4/0", rep.Processed, rep.Abandoned)
	}
}

// TestHotReloadAppliesBetweenMessages: the swap lands before the
// admission of its BeforeMsg arrival and never mid-message — the driver
// log shows the reload strictly between two Process calls.
func TestHotReloadAppliesBetweenMessages(t *testing.T) {
	d := &stubDriver{}
	rep, err := RunTenant(TenantConfig{
		Name:     "t",
		Quota:    Quota{DrainBudget: -1},
		Arrivals: at(0, 10, 20),
		Reloads:  []PolicyReload{{BeforeMsg: 2, PolicyJSON: "P2"}},
		Driver:   d,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reloads != 1 {
		t.Fatalf("Reloads = %d, want 1", rep.Reloads)
	}
	want := "msg 0 p0\nmsg 1 p1\nreload P2\nmsg 2 p2\n"
	if d.log.String() != want {
		t.Fatalf("driver log:\n%s\nwant:\n%s", d.log.String(), want)
	}
}

// TestReloadFailureNamesTenantAndMessage: a failing reload aborts the
// tenant with a typed, located error.
func TestReloadFailureNamesTenantAndMessage(t *testing.T) {
	_, err := RunTenant(TenantConfig{
		Name:     "broken",
		Arrivals: at(0, 1),
		Reloads:  []PolicyReload{{BeforeMsg: 1, PolicyJSON: "bad"}},
		Driver:   &stubDriver{failReload: true},
	})
	if err == nil || !strings.Contains(err.Error(), "broken") || !strings.Contains(err.Error(), "message 1") {
		t.Fatalf("err = %v, want tenant and message named", err)
	}
}

func TestTenantConfigValidation(t *testing.T) {
	if _, err := RunTenant(TenantConfig{Name: "t", Arrivals: at(0)}); err == nil {
		t.Fatal("nil driver accepted")
	}
	if _, err := RunTenant(TenantConfig{Name: "t", Arrivals: at(5, 3), Driver: &stubDriver{}}); err == nil {
		t.Fatal("unsorted arrivals accepted")
	}
	_, err := RunTenant(TenantConfig{
		Name: "t", Arrivals: at(0, 1), Driver: &stubDriver{},
		Reloads: []PolicyReload{{BeforeMsg: 1, PolicyJSON: "a"}, {BeforeMsg: 1, PolicyJSON: "b"}},
	})
	if err == nil {
		t.Fatal("duplicate reloads accepted")
	}
}

// buildStubFleet makes a fresh deterministic multi-tenant fleet (fleets
// are single-use: drivers accumulate state).
func buildStubFleet(n int) []TenantConfig {
	fleet := make([]TenantConfig, n)
	for i := range fleet {
		name := fmt.Sprintf("stub-%02d", i)
		fleet[i] = TenantConfig{
			Name:     name,
			Quota:    DefaultQuota(),
			Arrivals: workload.GenerateTrace(7, name, 50, 10),
			Driver:   &stubDriver{steps: int64(1000 * (i + 1))},
		}
	}
	return fleet
}

// TestServerRunByteIdenticalAcrossWorkerCounts: the same fleet hosted at
// parallel 1 and parallel 8 renders the same table and the same
// per-tenant fingerprints — tenants share no state and results land in
// index-addressed slots.
func TestServerRunByteIdenticalAcrossWorkerCounts(t *testing.T) {
	rep1, err := (&Server{Tenants: buildStubFleet(6)}).Run(1)
	if err != nil {
		t.Fatal(err)
	}
	rep8, err := (&Server{Tenants: buildStubFleet(6)}).Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Render() != rep8.Render() {
		t.Fatalf("render diverged across worker counts:\n%s\nvs\n%s", rep1.Render(), rep8.Render())
	}
	for i := range rep1.Tenants {
		if rep1.Tenants[i].Fingerprint != rep8.Tenants[i].Fingerprint {
			t.Fatalf("tenant %s fingerprint diverged across worker counts", rep1.Tenants[i].Name)
		}
	}
}

// strictPolicy is the corpus placeholder policy flipped to strict flow
// mode: labelled frames may no longer reach unlabelled receivers, so
// every sink write becomes a violation. The Msg labeller is kept — the
// deployed injection sites still reference it.
const strictPolicy = `{
  "labellers": { "Msg": "v => v.indexOf(\"E\") >= 0 ? \"Alpha\" : \"Beta\"" },
  "rules": [ "Alpha -> Beta", "Beta -> Gamma" ],
  "injections": [ { "object": "frame", "labeller": "Msg" } ],
  "mode": "strict"
}`

func firstRunnable(t *testing.T) *corpus.App {
	t.Helper()
	for _, app := range corpus.All() {
		if app.Runnable {
			return app
		}
	}
	t.Fatal("no runnable corpus app")
	return nil
}

func newCorpusDriver(t *testing.T) *AppDriver {
	t.Helper()
	app := firstRunnable(t)
	d, err := NewAppDriver(AppConfig{
		Name:       "test-" + app.Name,
		Sources:    map[string]string{app.Name + ".js": app.Source},
		PolicyJSON: app.PolicyJSON,
		SourceName: app.SourceName,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAppDriverHotReloadChangesVerdicts: under the shipped comparable
// policy the corpus app processes cleanly; after a hot swap to the strict
// variant the same traffic starts violating — the mode change takes
// effect on the next message, no redeploy.
func TestAppDriverHotReloadChangesVerdicts(t *testing.T) {
	d := newCorpusDriver(t)
	for i := 0; i < 3; i++ {
		out := d.Process(i, fmt.Sprintf("person%d:E%d", i, i))
		if out.Kind != OutcomeOK {
			t.Fatalf("pre-reload message %d: kind=%s detail=%s, want ok", i, out.Kind, out.Detail)
		}
		if out.Steps <= 0 {
			t.Fatalf("pre-reload message %d consumed no steps", i)
		}
	}
	if err := d.Reload(strictPolicy); err != nil {
		t.Fatal(err)
	}
	var violations int
	for i := 3; i < 6; i++ {
		if out := d.Process(i, fmt.Sprintf("person%d:E%d", i, i)); out.Kind == OutcomeViolation {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("strict reload produced no violations on labelled traffic")
	}
	if fp := d.Fingerprint(); !strings.Contains(fp, "violation") {
		t.Fatalf("fingerprint records no violations:\n%s", fp)
	}
}

// TestAppDriverReloadValidation: a reload must parse and must keep every
// labeller the deployed injection sites reference.
func TestAppDriverReloadValidation(t *testing.T) {
	d := newCorpusDriver(t)
	if err := d.Reload("{not json"); err == nil {
		t.Fatal("malformed policy accepted")
	}
	dropped := `{ "labellers": {}, "rules": [ "Alpha -> Beta" ] }`
	err := d.Reload(dropped)
	if err == nil || !strings.Contains(err.Error(), "labeller") {
		t.Fatalf("err = %v, want dropped-labeller rejection", err)
	}
	// a failed reload must leave the old policy in force
	if out := d.Process(0, "person0:E0"); out.Kind != OutcomeOK {
		t.Fatalf("after rejected reloads: kind=%s, want ok under the original policy", out.Kind)
	}
}

// TestDemoFleetDeterministic: two identical DemoFleet builds replay to
// byte-identical tenant accounts.
func TestDemoFleetDeterministic(t *testing.T) {
	run := func() string {
		fleet, err := DemoFleet(3, 15, 42, DefaultQuota(), 30)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := (&Server{Tenants: fleet}).Run(2)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		b.WriteString(rep.Render())
		for _, tr := range rep.Tenants {
			b.WriteString(tr.Fingerprint)
		}
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("demo fleet not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	r := &TenantReport{Latencies: []int64{9, 1, 5, 3, 7}}
	if p := r.LatencyP(0.50); p != 5 {
		t.Fatalf("p50 = %d, want 5", p)
	}
	// floor-index quantile, the repo's workload.Percentile convention
	if p := r.LatencyP(0.99); p != 7 {
		t.Fatalf("p99 = %d, want 7", p)
	}
	if p := r.LatencyP(1.0); p != 9 {
		t.Fatalf("p100 = %d, want 9", p)
	}
	empty := &TenantReport{}
	if p := empty.LatencyP(0.5); p != 0 {
		t.Fatalf("empty p50 = %d, want 0", p)
	}
}
