// Command turnstile-bench regenerates the tables and figures of the
// paper's evaluation (§6) from the built-in corpus and substrates:
//
//	turnstile-bench -table2              Table 2 (framework popularity)
//	turnstile-bench -figure10            Figure 10 + analysis timing (E1)
//	turnstile-bench -figure11            Figure 11 (overhead vs input rate, E2)
//	turnstile-bench -figure12            Figure 12 (per-app overhead at 30/250 Hz)
//	turnstile-bench -all                 everything
//
// E2 flags: -messages N (default 200), -warmup N, -repeats N, -apps a,b,c.
//
// Chaos mode: -chaos replays the runnable corpus under deterministic
// fault injection and asserts sink-trace equivalence between the
// original and instrumented versions on the failure paths. -faultseed N
// selects the fault schedule (same seed → byte-identical report);
// -faultschedule FILE replaces the generated per-app schedules with a
// fixed JSON schedule.
//
// Crash mode: -crash runs the adversarial crash corpus (unbounded loops,
// recursion, allocation blow-ups, timer storms, parser-depth abuse) under
// tight guard budgets with the tracker in fail-closed enforcement mode,
// and exits non-zero unless every app terminates with its expected typed
// error. The report is byte-identical at any -parallel level. Combine
// with -faultschedule to compose fault injection with the crash corpus
// (outcome kinds may legitimately shift under faults, so the expected-kind
// gate is skipped; determinism still holds).
//
// Scheduling flags: -parallel N fans the per-app analyses (E1) and
// preparation+measurement (E2) across N workers (default: one per CPU;
// 1 restores the paper's sequential methodology). A per-app pipeline
// cache shares each app's parsed AST and dataflow analysis between E1 and
// E2 and across repeated runs; -nocache disables it.
//
// Observability flags: -metrics replays each runnable app's selective and
// exhaustive versions with the telemetry layer attached and emits the
// per-app overhead-breakdown tables attributing instrumented cost to
// individual DIFT ops (count-based and byte-identical across runs and
// -parallel counts). -trace DIR additionally writes each app's
// selective-version structured trace JSON (virtual-clock timestamps).
// -profile FILE writes a pprof CPU profile of the whole run.
//
// Execution-mode flags: -noresolve runs every interpreter on the map-walk
// environment with the resolver fast paths disabled (the A/B escape
// hatch). -bench runs the slot-env vs map-walk interpreter
// microbenchmarks (-benchrepeats best-of repeats) and -benchout FILE
// writes the report JSON (the committed BENCH_*.json artifacts).
//
// Generated-corpus mode: -gen N generates and scores N seeded stratified
// apps (-genseed S selects the population; same (N, seed) → byte-identical
// report at any -parallel level) against their built-in
// must-catch/must-allow ground truth and renders a per-stratum
// precision/recall table, exiting non-zero on any missed flow or false
// positive. -servegen N appends generated tenants to the serve soak fleet.
//
// Serve mode: -serve runs the multi-tenant daemon soak — -servetenants
// well-behaved corpus tenants (plus the hostile crash+attack tenant
// unless -servehostile=false) driven through -servemessages arrivals each
// on the virtual clock — and prints the per-tenant table with sustained
// msg/s, p50/p99 latency and shed/denied/violation counts. -serveseed N
// selects the arrival traces; the report and the -serveout FILE JSON
// artifact (the committed BENCH_serve.json) are byte-identical for a
// fixed seed at any -parallel level.
//
// Recovery mode: -recovery runs the crash-recovery battery: a seeded fleet
// is run durably (labeled WAL + snapshots on an in-memory store), killed
// after every WAL record boundary (-recoverystride / -recoverymax coarsen
// the sweep), recovered on the surviving bytes and resumed at worker
// counts 1 and 8 — the resumed account must be byte-identical to the
// uninterrupted run. A corrupted-WAL scenario rides along and must come
// back poisoned with sinks denied, surviving a second restart. Exits
// non-zero on any mismatch. Sized by -servetenants/-servemessages/
// -serveseed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"turnstile/internal/corpus"
	"turnstile/internal/faults"
	"turnstile/internal/harness"
	"turnstile/internal/telemetry"
	"turnstile/internal/workload"
)

func main() {
	table2 := flag.Bool("table2", false, "regenerate Table 2")
	fig10 := flag.Bool("figure10", false, "regenerate Figure 10 (E1)")
	fig11 := flag.Bool("figure11", false, "regenerate Figure 11 (E2)")
	fig12 := flag.Bool("figure12", false, "regenerate Figure 12 (E2)")
	all := flag.Bool("all", false, "run everything")
	chaos := flag.Bool("chaos", false, "replay the corpus under fault injection and check equivalence")
	crash := flag.Bool("crash", false, "run the adversarial crash corpus under tight guard budgets")
	attack := flag.Bool("attack", false, "run the adversarial attack corpus and score precision/recall against ground truth")
	gen := flag.Int("gen", 0, "generate and score N seeded corpus apps against their built-in ground truth")
	genSeed := flag.Uint64("genseed", 1, "corpus seed for -gen (same (N, seed) → byte-identical report)")
	faultSeed := flag.Int64("faultseed", 1, "seed for generated fault schedules (chaos mode)")
	faultSchedule := flag.String("faultschedule", "", "JSON fault schedule file overriding the generated ones")
	messages := flag.Int("messages", 200, "messages per E2 run (paper: 1000)")
	warmup := flag.Int("warmup", 20, "warmup messages per E2 run")
	repeats := flag.Int("repeats", 1, "repeated E2 runs to average (paper: 10)")
	appsFilter := flag.String("apps", "", "comma-separated app names for E2 (default: all 27)")
	outDir := flag.String("out", "", "also write compiled results (JSON/CSV) into this directory")
	parallel := flag.Int("parallel", harness.DefaultParallelism(), "experiment worker count (1 = sequential)")
	nocache := flag.Bool("nocache", false, "disable the per-app parse+analysis cache")
	metrics := flag.Bool("metrics", false, "emit the per-app DIFT overhead-breakdown tables")
	traceDir := flag.String("trace", "", "write per-app selective-version trace JSON into this directory (implies -metrics)")
	profileOut := flag.String("profile", "", "write a pprof CPU profile of the whole run to this file")
	noResolve := flag.Bool("noresolve", false, "run interpreters on the map-walk env with resolver fast paths disabled (A/B escape hatch)")
	noVM := flag.Bool("novm", false, "run interpreters on the tree-walking evaluator with the bytecode VM disabled (differential oracle)")
	bench := flag.Bool("bench", false, "run the slot-env vs map-walk interpreter microbenchmarks")
	benchOut := flag.String("benchout", "", "also write the microbenchmark report JSON to this file (e.g. BENCH_baseline.json)")
	benchRepeats := flag.Int("benchrepeats", 5, "best-of repeats per microbenchmark mode")
	benchVM := flag.Bool("benchvm", false, "run the bytecode-VM vs tree-walker interpreter microbenchmarks")
	benchVMOut := flag.String("benchvmout", "", "also write the VM microbenchmark report JSON to this file (e.g. BENCH_vm.json)")
	serveSoak := flag.Bool("serve", false, "run the multi-tenant serve-daemon soak")
	serveTenants := flag.Int("servetenants", 4, "well-behaved tenant count for the soak")
	serveMessages := flag.Int("servemessages", 60, "messages per tenant for the soak")
	serveSeed := flag.Int64("serveseed", 1, "arrival-trace seed for the soak")
	serveHostile := flag.Bool("servehostile", true, "include the hostile crash+attack tenant in the soak")
	serveGen := flag.Int("servegen", 0, "append N seeded-generator tenants to the soak fleet")
	serveOut := flag.String("serveout", "", "also write the soak report JSON to this file (e.g. BENCH_serve.json)")
	recovery := flag.Bool("recovery", false, "run the crash-recovery battery (kill at WAL boundaries, byte-identical resume)")
	recoveryStride := flag.Int("recoverystride", 1, "test every stride-th WAL record boundary (recovery mode)")
	recoveryMax := flag.Int("recoverymax", 0, "cap the number of crash boundaries tested (0 = all)")
	flag.Parse()

	if *profileOut != "" {
		f, err := os.Create(*profileOut)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("cpu profile written to %s\n", *profileOut)
		}()
	}

	cache := harness.NewCache()
	if *nocache {
		cache = nil
	}

	if *traceDir != "" {
		*metrics = true
	}
	if *all {
		*table2, *fig10, *fig11, *fig12, *chaos, *crash, *attack, *metrics = true, true, true, true, true, true, true, true
	}
	if !*table2 && !*fig10 && !*fig11 && !*fig12 && !*chaos && !*crash && !*attack && !*metrics && !*bench && !*benchVM && !*serveSoak && !*recovery && *gen == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *recovery {
		res, err := harness.RunRecoveryBattery(harness.RecoveryOptions{
			Tenants: *serveTenants, Messages: *serveMessages, Seed: *serveSeed,
			BoundaryStride: *recoveryStride, MaxBoundaries: *recoveryMax,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.RenderRecovery(res))
		if !res.Passed() {
			fatal(fmt.Errorf("recovery battery: %d mismatch(es); fail-closed contract held: %v",
				len(res.Mismatches), res.Corruption == nil || res.Corruption.Ok()))
		}
	}

	if *serveSoak {
		res, err := harness.RunServeSoak(harness.ServeSoakOptions{
			Tenants: *serveTenants, Messages: *serveMessages, Seed: *serveSeed,
			Hostile: *serveHostile, GenTenants: *serveGen, GenSeed: *genSeed, Parallel: *parallel,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.RenderServeSoak(res))
		if *serveOut != "" {
			data, err := harness.ExportServeSoakJSON(res)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*serveOut, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *serveOut)
		}
	}

	if *bench {
		rep, err := harness.RunMicrobench(*benchRepeats)
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.RenderMicrobench(rep))
		if *benchOut != "" {
			data, err := harness.ExportMicrobenchJSON(rep)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *benchOut)
		}
	}

	if *benchVM {
		rep, err := harness.RunVMMicrobench(*benchRepeats)
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.RenderVMMicrobench(rep))
		if *benchVMOut != "" {
			data, err := harness.ExportVMMicrobenchJSON(rep)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*benchVMOut, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *benchVMOut)
		}
	}

	apps := corpus.All()

	if *table2 {
		fmt.Println(harness.RenderTable2(harness.RunTable2()))
	}

	if *fig10 {
		res, err := harness.RunE1With(apps, harness.E1Options{Parallel: *parallel, Cache: cache})
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.RenderE1(res))
		if *outDir != "" {
			writeOut(*outDir, "taint-analysis-compiled.csv", []byte(harness.ExportFigure10CSV(res)))
		}
	}

	if *fig11 || *fig12 {
		targets := corpus.Runnable(apps)
		if *appsFilter != "" {
			targets = filterRunnable(apps, *appsFilter)
		}
		opts := harness.E2Options{Messages: *messages, Warmup: *warmup, Repeats: *repeats,
			Parallel: *parallel, Cache: cache, NoResolve: *noResolve, NoVM: *noVM}
		fmt.Printf("measuring %d app(s) × 3 versions × %d messages on %d worker(s)...\n",
			len(targets), opts.Messages, *parallel)
		ms, err := harness.MeasureApps(targets, opts)
		if err != nil {
			fatal(err)
		}
		for i := range ms {
			m := &ms[i]
			fmt.Printf("  %-18s orig %8v  sel %8v  exh %8v (total service time)\n",
				m.App, m.Original.Total().Round(100), m.Selective.Total().Round(100), m.Exhaustive.Total().Round(100))
		}
		points := harness.Figure11(ms, workload.Rates)
		if *fig11 {
			fmt.Println()
			fmt.Println(harness.RenderFigure11(points))
		}
		if *fig12 {
			fmt.Println()
			fmt.Println(harness.RenderFigure12(harness.Figure12(ms)))
		}
		if *outDir != "" {
			if data, err := harness.ExportJSON(ms, workload.Rates); err == nil {
				writeOut(*outDir, "exp-results-compiled.json", data)
			}
			writeOut(*outDir, "plot-area-data.csv", []byte(harness.ExportAreaCSV(points)))
			writeOut(*outDir, "plot-bar-data.csv", []byte(harness.ExportBarCSV(harness.Figure12(ms))))
		}
		s := harness.Summarize(ms, points)
		fmt.Printf("\nheadline numbers (paper → measured):\n")
		fmt.Printf("  worst-case overhead at 30 Hz: selective 15.8%% → %.1f%%, exhaustive 153.8%% → %.1f%%\n",
			100*(s.WorstSelective30-1), 100*(s.WorstExhaustive30-1))
		fmt.Printf("  selective median overhead: 0.2%% at 2 Hz → %.1f%%, 22.0%% at 1000 Hz → %.1f%%\n",
			100*(s.MedianSelLow-1), 100*(s.MedianSelHigh-1))
		fmt.Printf("  apps with acceptable median overhead: selective %d, exhaustive %d (paper: 22 vs 16)\n",
			s.AcceptableSel, s.AcceptableExh)
	}

	if *metrics {
		targets := apps
		if *appsFilter != "" {
			targets = filterRunnable(apps, *appsFilter)
		}
		traceCap := 0
		if *traceDir != "" {
			traceCap = telemetry.DefaultTraceCapacity
		}
		res, err := harness.RunBreakdown(targets, harness.BreakdownOptions{
			Messages: *messages, Parallel: *parallel, Cache: cache, TraceCapacity: traceCap,
			NoResolve: *noResolve, NoVM: *noVM,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.RenderBreakdown(res))
		if *traceDir != "" {
			for i := range res.Rows {
				if res.Rows[i].SelectiveTrace != nil {
					writeOut(*traceDir, res.Rows[i].App+"-trace.json", res.Rows[i].SelectiveTrace)
				}
			}
		}
		if *outDir != "" {
			writeOut(*outDir, "overhead-breakdown.txt", []byte(harness.RenderBreakdown(res)))
		}
	}

	if *chaos {
		var schedule *faults.Schedule
		if *faultSchedule != "" {
			data, err := os.ReadFile(*faultSchedule)
			if err != nil {
				fatal(err)
			}
			if schedule, err = faults.ParseSchedule(data); err != nil {
				fatal(err)
			}
		}
		targets := apps
		if *appsFilter != "" {
			targets = filterRunnable(apps, *appsFilter)
		}
		res, err := harness.RunChaos(targets, harness.ChaosOptions{
			Seed: *faultSeed, Messages: *messages, Parallel: *parallel,
			Cache: cache, Schedule: schedule, NoResolve: *noResolve, NoVM: *noVM,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.RenderChaos(res))
		if *outDir != "" {
			writeOut(*outDir, "chaos-report.txt", []byte(harness.RenderChaos(res)))
		}
		if res.Equivalent != len(res.Apps) {
			fatal(fmt.Errorf("chaos: %d app(s) diverged under faults", len(res.Apps)-res.Equivalent))
		}
	}

	if *crash {
		var schedule *faults.Schedule
		if *faultSchedule != "" {
			data, err := os.ReadFile(*faultSchedule)
			if err != nil {
				fatal(err)
			}
			if schedule, err = faults.ParseSchedule(data); err != nil {
				fatal(err)
			}
		}
		res, err := harness.RunCrashCorpus(harness.CrashOptions{Parallel: *parallel, Schedule: schedule, NoResolve: *noResolve, NoVM: *noVM})
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.RenderCrash(res))
		if *outDir != "" {
			writeOut(*outDir, "crash-report.txt", []byte(harness.RenderCrash(res)))
		}
		if schedule == nil && res.Passed != len(res.Apps) {
			fatal(fmt.Errorf("crash corpus: %d app(s) escaped typed termination", len(res.Apps)-res.Passed))
		}
	}

	if *attack {
		res, err := harness.RunAttackCorpus(harness.AttackOptions{Parallel: *parallel, NoResolve: *noResolve, NoVM: *noVM})
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.RenderAttack(res))
		if *outDir != "" {
			writeOut(*outDir, "attack-report.txt", []byte(harness.RenderAttack(res)))
		}
		if res.FN > 0 {
			fatal(fmt.Errorf("attack corpus: %d must-catch flow(s) escaped the tracker", res.FN))
		}
		if res.Passed != len(res.Apps) {
			fatal(fmt.Errorf("attack corpus: %d app(s) failed (errors or false positives)", len(res.Apps)-res.Passed))
		}
	}

	if *gen > 0 {
		res, err := harness.RunGenCorpus(harness.GenOptions{
			N: *gen, Seed: *genSeed, Parallel: *parallel, NoResolve: *noResolve, NoVM: *noVM,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.RenderGen(res))
		if *outDir != "" {
			writeOut(*outDir, "gen-report.txt", []byte(harness.RenderGen(res)))
		}
		if res.FN > 0 {
			fatal(fmt.Errorf("generated corpus: %d must-catch flow(s) escaped the tracker", res.FN))
		}
		if res.Passed != len(res.Apps) {
			fatal(fmt.Errorf("generated corpus: %d app(s) failed (errors or false positives)", len(res.Apps)-res.Passed))
		}
	}

	if cache != nil {
		if s := cache.Stats(); s.Entries > 0 {
			fmt.Printf("\npipeline cache: %d app(s) cached, %d lookup hit(s), %d miss(es)\n",
				s.Entries, s.Hits, s.Misses)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "turnstile-bench:", err)
	os.Exit(1)
}

// filterRunnable resolves a comma-separated -apps list against the
// runnable corpus, fataling on unknown names.
func filterRunnable(apps []*corpus.App, filter string) []*corpus.App {
	runnable := corpus.Runnable(apps)
	var filtered []*corpus.App
	for _, name := range strings.Split(filter, ",") {
		a := corpus.ByName(runnable, strings.TrimSpace(name))
		if a == nil {
			fatal(fmt.Errorf("unknown runnable app %q", name))
		}
		filtered = append(filtered, a)
	}
	return filtered
}

// writeOut writes one compiled artifact, creating the directory if needed.
func writeOut(dir, name string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
