package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteOut(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "results")
	writeOut(dir, "x.csv", []byte("a,b\n1,2\n"))
	data, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Fatalf("data = %q", data)
	}
}
