package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"turnstile/internal/interp"
	"turnstile/internal/nodered"
)

// cmdDLQ deploys a flow on the queued (bounded-mailbox) engine, drives it,
// and then lists — and optionally replays — the dead-letter queue:
//
//	turnstile dlq -flow flow.json [-inject ID] [-messages N] [-cap N]
//	              [-restartbase N] [-advance N] [-replay] node1.js...
//
// Replay re-enqueues every shed message in shed order under a fresh drain
// budget; it is refused while any node's breaker is open, so pair -replay
// with -advance to let the supervisor's cooldown elapse first.
func cmdDLQ(args []string) error {
	fs := flag.NewFlagSet("dlq", flag.ExitOnError)
	flowPath := fs.String("flow", "", "flow definition JSON (required)")
	injectNode := fs.String("inject", "", "node ID to inject messages into (default: first node)")
	messages := fs.Int("messages", 5, "number of messages to inject")
	payload := fs.String("payload", "msg-%d", "payload format (one %d verb)")
	mailboxCap := fs.Int("cap", 4, "per-node mailbox capacity (queued engine)")
	restartBase := fs.Int64("restartbase", 100, "supervisor restart backoff base in virtual ticks (0 = no supervisor)")
	advance := fs.Int64("advance", 0, "advance the virtual clock N ticks before replay")
	replay := fs.Bool("replay", false, "re-enqueue the dead-letter queue after listing it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *flowPath == "" {
		return fmt.Errorf("dlq: -flow is required")
	}
	flowData, err := os.ReadFile(*flowPath)
	if err != nil {
		return err
	}
	flow, err := nodered.ParseFlowJSON(flowData)
	if err != nil {
		return err
	}
	pkgPaths := fs.Args()
	if len(pkgPaths) == 0 {
		return fmt.Errorf("dlq: no node package files given")
	}
	sort.Strings(pkgPaths)

	ip := interp.New()
	rt := nodered.New(ip)
	rt.MailboxCap = *mailboxCap
	rt.RestartBase = *restartBase
	for _, p := range pkgPaths {
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		if err := rt.LoadPackage(p, string(data)); err != nil {
			return err
		}
	}
	if err := rt.Deploy(flow); err != nil {
		return err
	}
	target := *injectNode
	if target == "" {
		target = flow.Nodes[0].ID
	}
	for i := 0; i < *messages; i++ {
		msg := interp.NewObject()
		msg.Set("payload", fmt.Sprintf(*payload, i))
		if err := rt.Inject(target, msg); err != nil {
			fmt.Printf("message %d failed: %v\n", i, err)
		}
	}
	fmt.Printf("injected %d message(s) into %q: %d delivered, %d dead-lettered\n",
		*messages, target, len(rt.Deliveries), len(rt.DeadLetters))
	for i, d := range rt.DeadLetters {
		fmt.Printf("  dlq[%d] node=%s reason=%s payload=%v\n", i, d.NodeID, d.Reason, payloadOf(d.Msg))
	}
	if !*replay {
		return nil
	}
	if *advance > 0 {
		ip.Clock.Advance(*advance)
		fmt.Printf("advanced virtual clock %d tick(s) (now %d)\n", *advance, ip.Clock.Now())
	}
	n, err := rt.ReplayDeadLetters()
	if err != nil {
		return fmt.Errorf("dlq: %w", err)
	}
	fmt.Printf("replayed %d message(s): %d now delivered, %d re-dead-lettered, %d probe(s)\n",
		n, len(rt.Deliveries), len(rt.DeadLetters), rt.Health.Probes)
	return nil
}

// payloadOf extracts msg.payload for display, falling back to the whole
// value.
func payloadOf(v interp.Value) interp.Value {
	if obj, ok := v.(*interp.Object); ok {
		if p, ok := obj.Get("payload"); ok {
			return p
		}
	}
	return v
}
