package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"turnstile/internal/durable"
	"turnstile/internal/interp"
	"turnstile/internal/nodered"
	"turnstile/internal/serve"
)

// cmdDLQ deploys a flow on the queued (bounded-mailbox) engine, drives it,
// and then lists — and optionally replays — the dead-letter queue:
//
//	turnstile dlq -flow flow.json [-inject ID] [-messages N] [-cap N]
//	              [-restartbase N] [-advance N] [-replay] node1.js...
//
// Replay re-enqueues every shed message in shed order under a fresh drain
// budget; it is refused while any node's breaker is open, so pair -replay
// with -advance to let the supervisor's cooldown elapse first.
//
// With -state DIR the command instead reads the serve daemon's durable
// state directory (see turnstile serve -state): it lists every persisted
// dead letter — with the DIFT labels recorded at admission — straight from
// the write-ahead logs, across restarts. -replay recovers each tenant and
// re-drives its unreplayed dead letters through the recovered driver,
// committing a replay record per message so the decision survives further
// restarts; replay is refused for poisoned tenants.
func cmdDLQ(args []string) error {
	fs := flag.NewFlagSet("dlq", flag.ExitOnError)
	flowPath := fs.String("flow", "", "flow definition JSON (required unless -state)")
	state := fs.String("state", "", "serve daemon state directory (durable WAL mode)")
	tenant := fs.String("tenant", "", "restrict -state mode to one tenant")
	injectNode := fs.String("inject", "", "node ID to inject messages into (default: first node)")
	messages := fs.Int("messages", 5, "number of messages to inject")
	payload := fs.String("payload", "msg-%d", "payload format (one %d verb)")
	mailboxCap := fs.Int("cap", 4, "per-node mailbox capacity (queued engine)")
	restartBase := fs.Int64("restartbase", 100, "supervisor restart backoff base in virtual ticks (0 = no supervisor)")
	advance := fs.Int64("advance", 0, "advance the virtual clock N ticks before replay")
	replay := fs.Bool("replay", false, "re-enqueue the dead-letter queue after listing it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state != "" {
		return cmdDLQState(*state, *tenant, *replay)
	}
	if *flowPath == "" {
		return fmt.Errorf("dlq: -flow is required (or -state for the serve daemon's durable DLQ)")
	}
	flowData, err := os.ReadFile(*flowPath)
	if err != nil {
		return err
	}
	flow, err := nodered.ParseFlowJSON(flowData)
	if err != nil {
		return err
	}
	pkgPaths := fs.Args()
	if len(pkgPaths) == 0 {
		return fmt.Errorf("dlq: no node package files given")
	}
	sort.Strings(pkgPaths)

	ip := interp.New()
	rt := nodered.New(ip)
	rt.MailboxCap = *mailboxCap
	rt.RestartBase = *restartBase
	for _, p := range pkgPaths {
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		if err := rt.LoadPackage(p, string(data)); err != nil {
			return err
		}
	}
	if err := rt.Deploy(flow); err != nil {
		return err
	}
	target := *injectNode
	if target == "" {
		target = flow.Nodes[0].ID
	}
	for i := 0; i < *messages; i++ {
		msg := interp.NewObject()
		msg.Set("payload", fmt.Sprintf(*payload, i))
		if err := rt.Inject(target, msg); err != nil {
			fmt.Printf("message %d failed: %v\n", i, err)
		}
	}
	fmt.Printf("injected %d message(s) into %q: %d delivered, %d dead-lettered\n",
		*messages, target, len(rt.Deliveries), len(rt.DeadLetters))
	for i, d := range rt.DeadLetters {
		fmt.Printf("  dlq[%d] node=%s reason=%s payload=%v\n", i, d.NodeID, d.Reason, payloadOf(d.Msg))
	}
	if !*replay {
		return nil
	}
	if *advance > 0 {
		ip.Clock.Advance(*advance)
		fmt.Printf("advanced virtual clock %d tick(s) (now %d)\n", *advance, ip.Clock.Now())
	}
	n, err := rt.ReplayDeadLetters()
	if err != nil {
		return fmt.Errorf("dlq: %w", err)
	}
	fmt.Printf("replayed %d message(s): %d now delivered, %d re-dead-lettered, %d probe(s)\n",
		n, len(rt.Deliveries), len(rt.DeadLetters), rt.Health.Probes)
	return nil
}

// payloadOf extracts msg.payload for display, falling back to the whole
// value.
func payloadOf(v interp.Value) interp.Value {
	if obj, ok := v.(*interp.Object); ok {
		if p, ok := obj.Get("payload"); ok {
			return p
		}
	}
	return v
}

// persistedLetter is one dead letter reconstructed from a tenant's WAL.
type persistedLetter struct {
	idx      int
	arrival  int64
	reason   string
	payload  string
	labels   []string
	replayed bool
	outcome  string
}

// persistedDLQ folds a tenant's verified record history into its
// dead-letter queue view: shed and abandon records add letters, replay
// records mark them handled, and the first poison record pins the sticky
// degraded latch.
func persistedDLQ(recs []durable.Record) (letters []persistedLetter, poisoned string) {
	for _, rec := range recs {
		switch rec.Kind {
		case durable.KindShed, durable.KindAbandon:
			reason := rec.Reason
			if reason == "" {
				if rec.Kind == durable.KindShed {
					reason = "lag"
				} else {
					reason = "shutdown"
				}
			}
			letters = append(letters, persistedLetter{
				idx: rec.Idx, arrival: rec.Tick, reason: reason,
				payload: rec.Payload, labels: rec.Labels,
			})
		case durable.KindReplay:
			for j := range letters {
				if letters[j].idx == rec.Idx && !letters[j].replayed {
					letters[j].replayed = true
					letters[j].outcome = rec.Outcome
					break
				}
			}
		case durable.KindPoison:
			if poisoned == "" {
				poisoned = rec.Reason
				if poisoned == "" {
					poisoned = "degraded"
				}
			}
		}
	}
	return letters, poisoned
}

// cmdDLQState is the serve-daemon durable mode of turnstile dlq: list —
// and optionally replay — the dead letters persisted in a -state
// directory's write-ahead logs.
func cmdDLQState(stateDir, tenant string, replay bool) error {
	store, err := durable.NewFileStore(stateDir)
	if err != nil {
		return err
	}
	defer store.Close()

	// listing is read-only: decode straight from the WALs
	names, err := store.List()
	if err != nil {
		return err
	}
	sort.Strings(names)
	shown := 0
	for _, n := range names {
		if !strings.HasSuffix(n, ".wal") {
			continue
		}
		tn := strings.TrimSuffix(n, ".wal")
		if tenant != "" && tn != tenant {
			continue
		}
		shown++
		data, err := store.ReadFile(n)
		if err != nil {
			return err
		}
		recs, verdict := durable.DecodeRecords(data)
		letters, poisoned := persistedDLQ(recs)
		status := ""
		if poisoned != "" {
			status = fmt.Sprintf(" POISONED (%s)", poisoned)
		}
		if !verdict.Clean {
			status += fmt.Sprintf(" UNVERIFIABLE SUFFIX (%s)", verdict.Reason)
		}
		fmt.Printf("tenant %s: %d record(s), %d dead letter(s)%s\n", tn, len(recs), len(letters), status)
		for _, l := range letters {
			line := fmt.Sprintf("  dlq idx=%d arrival=%d reason=%s labels=%v payload=%s", l.idx, l.arrival, l.reason, l.labels, l.payload)
			if l.replayed {
				line += fmt.Sprintf(" replayed=%s", l.outcome)
			}
			fmt.Println(line)
		}
	}
	if shown == 0 {
		return fmt.Errorf("dlq: no matching tenant WALs in %s", stateDir)
	}
	if !replay {
		return nil
	}

	// replay needs the tenant universes: rebuild the fleet the manifest
	// records and recover each tenant through the full durable path
	m, ok, err := readManifest(store)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("dlq: %s holds no fleet manifest; cannot rebuild drivers for replay", stateDir)
	}
	fleet, err := manifestFleet(m, nil)
	if err != nil {
		return err
	}
	for _, cfg := range fleet {
		if tenant != "" && cfg.Name != tenant {
			continue
		}
		replayed, _, err := serve.ReplayDeadLetters(cfg, store)
		if err != nil {
			fmt.Printf("replay %s: REFUSED: %v\n", cfg.Name, err)
			continue
		}
		fmt.Printf("replay %s: %d message(s) re-driven\n", cfg.Name, len(replayed))
		for _, r := range replayed {
			line := fmt.Sprintf("  idx=%d outcome=%s", r.Idx, r.Outcome)
			if r.Detail != "" {
				line += " detail=" + r.Detail
			}
			fmt.Println(line)
		}
	}
	return nil
}
