package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testApp = `
const net = require("net");
const fs = require("fs");
const sock = net.connect({ host: "cam", port: 1 });
const out = fs.createWriteStream("/log");
sock.on("data", frame => {
  out.write(frame.trim());
});
`

const testPolicy = `{
  "labellers": { "Frame": "v => \"secret\"" },
  "rules": [ "secret -> archive" ],
  "injections": [ { "object": "frame", "labeller": "Frame" } ]
}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture redirects stdout around fn.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	err := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 64<<10)
	n, _ := r.Read(buf)
	return string(buf[:n]), err
}

func TestCmdAnalyze(t *testing.T) {
	app := writeTemp(t, "app.js", testApp)
	out, err := capture(t, func() error { return cmdAnalyze([]string{app}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 privacy-sensitive dataflow") {
		t.Fatalf("out = %q", out)
	}
}

func TestCmdAnalyzeHTML(t *testing.T) {
	app := writeTemp(t, "app.js", testApp)
	htmlPath := filepath.Join(t.TempDir(), "report.html")
	if _, err := capture(t, func() error { return cmdAnalyze([]string{"-html", htmlPath, app}) }); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<!DOCTYPE html>") {
		t.Fatal("report not written")
	}
}

func TestCmdCompare(t *testing.T) {
	app := writeTemp(t, "app.js", testApp)
	out, err := capture(t, func() error { return cmdCompare([]string{app}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "turnstile") || !strings.Contains(out, "baseline") {
		t.Fatalf("out = %q", out)
	}
}

func TestCmdInstrument(t *testing.T) {
	app := writeTemp(t, "app.js", testApp)
	pol := writeTemp(t, "policy.json", testPolicy)
	out, err := capture(t, func() error {
		return cmdInstrument([]string{"-policy", pol, app})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "__t.label(frame") {
		t.Fatalf("instrumented output missing label:\n%s", out)
	}
}

func TestCmdRun(t *testing.T) {
	app := writeTemp(t, "app.js", testApp)
	pol := writeTemp(t, "policy.json", testPolicy)
	out, err := capture(t, func() error {
		return cmdRun([]string{"-policy", pol, "-messages", "3", app})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sink writes: 3") {
		t.Fatalf("out = %q", out)
	}
}

func TestCmdCheckPolicy(t *testing.T) {
	pol := writeTemp(t, "policy.json", testPolicy)
	out, err := capture(t, func() error { return cmdCheckPolicy([]string{pol}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "policy OK") {
		t.Fatalf("out = %q", out)
	}
	bad := writeTemp(t, "bad.json", `{"rules":["a -> b","b -> a"]}`)
	if _, err := capture(t, func() error { return cmdCheckPolicy([]string{bad}) }); err == nil {
		t.Fatal("cyclic policy should fail")
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdAnalyze([]string{}); err == nil {
		t.Fatal("no files should fail")
	}
	if err := cmdCheckPolicy([]string{}); err == nil {
		t.Fatal("no policy should fail")
	}
	if err := cmdAnalyze([]string{"/does/not/exist.js"}); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestCmdCorpus(t *testing.T) {
	out, err := capture(t, func() error { return cmdCorpus(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "nlp.js") || !strings.Contains(out, "framework-missed") {
		t.Fatalf("listing:\n%s", out)
	}
	out, err = capture(t, func() error { return cmdCorpus([]string{"modbus"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "net.connect") {
		t.Fatalf("dump:\n%s", out)
	}
	if err := cmdCorpus([]string{"nope"}); err == nil {
		t.Fatal("unknown app should fail")
	}
}

const upperPkg = `
module.exports = function(RED) {
  function UpperNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg, send, done) {
      msg.payload = msg.payload.toUpperCase();
      send(msg);
    });
  }
  RED.nodes.registerType("upper", UpperNode);
};
`

const logPkg = `
module.exports = function(RED) {
  const fs = require("fs");
  function LogNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg) {
      fs.writeFileSync("/flow-log", msg.payload);
    });
  }
  RED.nodes.registerType("logger", LogNode);
};
`

func TestCmdFlow(t *testing.T) {
	upper := writeTemp(t, "upper.js", upperPkg)
	logger := writeTemp(t, "logger.js", logPkg)
	flow := writeTemp(t, "flow.json", `{
	  "label": "demo",
	  "nodes": [
	    { "id": "u", "type": "upper", "wires": [["l"]] },
	    { "id": "l", "type": "logger" }
	  ]
	}`)
	out, err := capture(t, func() error {
		return cmdFlow([]string{"-flow", flow, "-messages", "2", "-inject", "u", upper, logger})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"deployed flow \"demo\"", "deliveries: 4", "sink writes: 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCmdFlowErrors(t *testing.T) {
	if err := cmdFlow([]string{}); err == nil {
		t.Fatal("missing -flow should fail")
	}
	flow := writeTemp(t, "flow.json", `{"nodes":[{"id":"a","type":"ghost"}]}`)
	if err := cmdFlow([]string{"-flow", flow}); err == nil {
		t.Fatal("no packages should fail")
	}
	pkg := writeTemp(t, "p.js", "let x = 1;")
	if err := cmdFlow([]string{"-flow", flow, pkg}); err == nil {
		t.Fatal("unknown node type should fail")
	}
}
