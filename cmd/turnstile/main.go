// Command turnstile is the developer-facing CLI of the Turnstile
// reproduction: it analyzes MiniJS applications for privacy-sensitive
// dataflows, instruments them against an IFC policy, and runs the managed
// result.
//
// Usage:
//
//	turnstile analyze <app.js>...            report privacy-sensitive dataflows
//	turnstile compare <app.js>...            compare against the CodeQL-equivalent baseline
//	turnstile instrument -policy p.json [-mode selective|exhaustive] <app.js>
//	turnstile run -policy p.json [-source NAME] [-messages N] <app.js>
//	turnstile run -chaos [-faultseed N | -faultschedule f.json] ...  run under fault injection
//	turnstile run -fuel N -maxdepth N -maxalloc N -deadline N [-failclosed] ...  resource governance
//	turnstile check-policy <policy.json>
//	turnstile attack [name | -run]           list, dump or score the adversarial attack corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sort"
	"strings"

	"turnstile/internal/baseline"
	"turnstile/internal/core"
	"turnstile/internal/corpus"
	"turnstile/internal/faults"
	"turnstile/internal/guard"
	"turnstile/internal/harness"
	"turnstile/internal/instrument"
	"turnstile/internal/interp"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/taint"
	"turnstile/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "instrument":
		err = cmdInstrument(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "check-policy":
		err = cmdCheckPolicy(os.Args[2:])
	case "corpus":
		err = cmdCorpus(os.Args[2:])
	case "attack":
		err = cmdAttack(os.Args[2:])
	case "flow":
		err = cmdFlow(os.Args[2:])
	case "dlq":
		err = cmdDLQ(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "turnstile: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "turnstile:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  turnstile analyze <app.js>...                       report privacy-sensitive dataflows
  turnstile compare <app.js>...                       compare with the baseline analyzer
  turnstile instrument -policy p.json [-mode M] <app.js>   print the privacy-managed source
  turnstile run -policy p.json [-source S] [-messages N] <app.js>
                [-chaos] [-faultseed N] [-faultschedule f.json]     run under fault injection
                [-fuel N] [-maxdepth N] [-maxalloc N] [-deadline N] resource budgets (0 = off)
                [-failclosed]                                       deny sinks after a guard trip
                [-metrics] [-trace out.json] [-profile cpu.pprof]   observability hooks
  turnstile check-policy <policy.json>                validate an IFC policy
  turnstile corpus [name]                             list the evaluation corpus / dump one app
  turnstile attack [name | -run]                      list the adversarial attack corpus / dump one app / score it
  turnstile flow -flow f.json [-policy p.json] [-inject ID] <pkg.js>...   deploy and drive a Node-RED flow
  turnstile dlq -flow f.json [-cap N] [-replay] [-advance N] <pkg.js>...  list / replay a flow's dead-letter queue
  turnstile dlq -state DIR [-tenant NAME] [-replay]                       list / replay the serve daemon's persisted dead letters
  turnstile serve [-tenants N] [-hostile] [-messages N] [-seed N]         host the multi-tenant serve daemon demo
                  [-state DIR] [-resume] [-snapevery N]                   durable WAL + snapshots; recover and resume across restarts`)
}

// readSources loads and parses the input files, fanning the per-file work
// across up to parallel workers (1 = sequential). Files are sorted first
// and results are slotted by index, so output order never depends on the
// worker interleaving.
func readSources(paths []string, parallel int) (map[string]string, []taint.File, error) {
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no input files")
	}
	sort.Strings(paths)
	srcs := make([]string, len(paths))
	files := make([]taint.File, len(paths))
	err := harness.ForEach(len(paths), parallel, func(i int) error {
		p := paths[i]
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		prog, err := parser.Parse(p, string(data))
		if err != nil {
			return err
		}
		srcs[i] = string(data)
		files[i] = taint.File{Name: p, Prog: prog}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sources := make(map[string]string, len(paths))
	for i, p := range paths {
		sources[p] = srcs[i]
	}
	return sources, files, nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	typeSensitive := fs.Bool("type-sensitive", true, "enable type-sensitive interprocedural analysis")
	implicit := fs.Bool("implicit", false, "also track implicit (control-dependence) flows")
	htmlOut := fs.String("html", "", "write a visual dataflow report to this file")
	parallel := fs.Int("parallel", harness.DefaultParallelism(), "file-loading worker count (1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources, files, err := readSources(fs.Args(), *parallel)
	if err != nil {
		return err
	}
	opts := taint.DefaultOptions()
	opts.TypeSensitive = *typeSensitive
	opts.ImplicitFlows = *implicit
	res := taint.Analyze(files, opts)
	fmt.Printf("analysis completed in %v: %d privacy-sensitive dataflow(s)\n", res.Duration, len(res.Paths))
	for _, p := range res.Paths {
		fmt.Printf("  %-24s %s  →  %-22s %s\n", p.SourceKind, p.Source, p.SinkKind, p.Sink)
	}
	fmt.Printf("sources: %d, sinks: %d\n", len(res.Sources), len(res.Sinks))
	if *htmlOut != "" {
		page := taint.ReportHTML(res, files, sources)
		if err := os.WriteFile(*htmlOut, []byte(page), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *htmlOut)
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	parallel := fs.Int("parallel", harness.DefaultParallelism(), "file-loading worker count (1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, files, err := readSources(fs.Args(), *parallel)
	if err != nil {
		return err
	}
	tr := taint.Analyze(files, taint.DefaultOptions())
	br := baseline.Analyze(files)
	fmt.Printf("%-26s %10s %12s\n", "", "turnstile", "baseline")
	fmt.Printf("%-26s %10d %12d\n", "privacy-sensitive paths", len(tr.Paths), len(br.Paths))
	fmt.Printf("%-26s %10v %12v\n", "analysis time", tr.Duration, br.Duration)
	return nil
}

func cmdInstrument(args []string) error {
	fs := flag.NewFlagSet("instrument", flag.ExitOnError)
	policyPath := fs.String("policy", "", "IFC policy JSON file")
	mode := fs.String("mode", "selective", "instrumentation mode: selective or exhaustive")
	parallel := fs.Int("parallel", harness.DefaultParallelism(), "file-loading worker count (1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources, files, err := readSources(fs.Args(), *parallel)
	if err != nil {
		return err
	}
	_ = files
	policyJSON := `{"rules":[]}`
	if *policyPath != "" {
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			return err
		}
		policyJSON = string(data)
	}
	opts := core.DefaultOptions()
	if *mode == "exhaustive" {
		opts.Mode = instrument.Exhaustive
	}
	opts.Enforce = false
	app, err := core.Manage(sources, policyJSON, opts)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(app.Instrumented))
	for n := range app.Instrumented {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		res := app.Results[n]
		fmt.Printf("// %s — %d label(s), %d binaryOp(s), %d invoke(s), %d track(s)\n",
			n, res.Labels, res.BinaryOps, res.Invokes, res.Tracks)
		fmt.Println(app.Instrumented[n])
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	policyPath := fs.String("policy", "", "IFC policy JSON file")
	mode := fs.String("mode", "selective", "instrumentation mode")
	sourceName := fs.String("source", "", "I/O source to feed (default: first registered)")
	messages := fs.Int("messages", 10, "number of messages to inject")
	payload := fs.String("payload", "person%d:E%d", "payload format (two %d verbs)")
	enforce := fs.Bool("enforce", true, "block violating flows")
	implicit := fs.Bool("implicit", false, "track implicit (control-dependence) flows")
	parallel := fs.Int("parallel", harness.DefaultParallelism(), "file-loading worker count (1 = sequential)")
	chaos := fs.Bool("chaos", false, "run under deterministic fault injection")
	faultSeed := fs.Int64("faultseed", 1, "seed for the generated fault schedule")
	faultSchedule := fs.String("faultschedule", "", "JSON fault schedule file (implies -chaos)")
	fuel := fs.Int64("fuel", 0, "interpreter step budget (0 = unlimited)")
	maxDepth := fs.Int64("maxdepth", 0, "call-stack depth cap (0 = unlimited)")
	maxAlloc := fs.Int64("maxalloc", 0, "allocation-unit budget (0 = unlimited)")
	deadline := fs.Int64("deadline", 0, "virtual-clock deadline in ticks (0 = none)")
	failClosed := fs.Bool("failclosed", false, "fail closed: deny all sink flows after a guard trip or tracker inconsistency")
	metrics := fs.Bool("metrics", false, "print the telemetry metrics table after the run")
	traceOut := fs.String("trace", "", "write the structured event trace to this file (chrome-trace format with a .chrome.json suffix, JSON otherwise)")
	profileOut := fs.String("profile", "", "write a pprof CPU profile of the run to this file")
	noResolve := fs.Bool("noresolve", false, "run on the map-walk env with resolver fast paths disabled (A/B escape hatch)")
	noVM := fs.Bool("novm", false, "run on the tree-walking evaluator with the bytecode VM disabled (differential oracle)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profileOut != "" {
		f, err := os.Create(*profileOut)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("cpu profile written to %s\n", *profileOut)
		}()
	}
	sources, _, err := readSources(fs.Args(), *parallel)
	if err != nil {
		return err
	}
	policyJSON := `{"rules":[]}`
	if *policyPath != "" {
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			return err
		}
		policyJSON = string(data)
	}
	opts := core.DefaultOptions()
	if *mode == "exhaustive" {
		opts.Mode = instrument.Exhaustive
	}
	opts.Enforce = *enforce
	opts.ImplicitFlows = *implicit
	if *fuel > 0 || *maxDepth > 0 || *maxAlloc > 0 || *deadline > 0 {
		opts.Guard = &guard.Limits{
			Fuel: *fuel, MaxDepth: *maxDepth, MaxAlloc: *maxAlloc, DeadlineTicks: *deadline,
		}
	}
	opts.FailClosed = *failClosed
	opts.NoResolve = *noResolve
	opts.NoVM = *noVM
	if *metrics {
		opts.Metrics = telemetry.NewMetrics()
	}
	if *traceOut != "" {
		opts.TraceCapacity = telemetry.DefaultTraceCapacity
	}
	app, err := core.Manage(sources, policyJSON, opts)
	if err != nil {
		return err
	}
	var injector *faults.Injector
	if *chaos || *faultSchedule != "" {
		var schedule *faults.Schedule
		if *faultSchedule != "" {
			data, err := os.ReadFile(*faultSchedule)
			if err != nil {
				return err
			}
			if schedule, err = faults.ParseSchedule(data); err != nil {
				return err
			}
		} else {
			schedule = faults.Generate(*faultSeed, fs.Arg(0))
		}
		injector = app.IP.InstallFaults(schedule)
	}
	name := *sourceName
	if name == "" {
		names := app.IP.SourceNames()
		if len(names) == 0 {
			return fmt.Errorf("application registered no I/O sources")
		}
		name = names[0]
	}
	fmt.Printf("feeding %d message(s) into %s\n", *messages, name)
	for i := 0; i < *messages; i++ {
		msg := fmt.Sprintf(*payload, i, i%7)
		if err := app.Emit(name, "data", msg); err != nil {
			if injector != nil {
				fmt.Printf("  message %d error: %v\n", i, err)
			} else {
				fmt.Printf("  message %d BLOCKED: %v\n", i, err)
			}
		}
	}
	if injector != nil {
		st := injector.Stats()
		fmt.Printf("fault injection: %d op(s): %d failed, %d dropped, %d delayed (virtual clock at %d)\n",
			st.Ops, st.Failed, st.Dropped, st.Delayed, app.IP.Clock.Now())
		for _, line := range strings.Split(strings.TrimRight(injector.TraceString(), "\n"), "\n") {
			if line != "" {
				fmt.Println("  fault:", line)
			}
		}
	}
	if app.Guard != nil {
		if be := app.Guard.Tripped(); be != nil {
			fmt.Printf("guard TRIPPED: %v\n", be)
		} else {
			fmt.Printf("guard: within budget (fuel %d, alloc %d)\n",
				app.Guard.FuelUsed(), app.Guard.AllocUsed())
		}
	}
	if deg, reason := app.Tracker.Degraded(); deg {
		fmt.Printf("tracker DEGRADED (fail-closed): %s\n", reason)
	}
	fmt.Printf("sink writes: %d, violations: %d, tracker stats: %+v\n",
		len(app.Writes()), len(app.Violations()), app.Tracker.Stats())
	for _, v := range app.Violations() {
		fmt.Println("  violation:", v.Error())
	}
	for _, line := range app.IP.ConsoleOut {
		fmt.Println("  console:", line)
	}
	if *metrics {
		// fold the interpreter's env/IC fast-path counters into the registry
		// before rendering
		app.IP.FlushEnvTelemetry()
		fmt.Print(opts.Metrics.Render())
	}
	if *traceOut != "" {
		var data []byte
		if strings.HasSuffix(*traceOut, ".chrome.json") {
			data, err = app.Tracer.ExportChromeTrace()
		} else {
			data, err = app.Tracer.ExportJSON()
		}
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d event(s), %d dropped)\n",
			*traceOut, app.Tracer.Len(), app.Tracer.Dropped())
	}
	return nil
}

func cmdCorpus(args []string) error {
	apps := corpus.All()
	if len(args) == 0 {
		fmt.Printf("%-20s %-18s %7s %9s %9s %9s\n",
			"name", "category", "manual", "turnstile", "baseline", "runnable")
		for _, a := range apps {
			fmt.Printf("%-20s %-18s %7d %9d %9d %9v\n",
				a.Name, a.Category, a.GroundTruth, a.ExpectTurnstile, a.ExpectBaseline, a.Runnable)
		}
		return nil
	}
	app := corpus.ByName(apps, args[0])
	if app == nil {
		return fmt.Errorf("unknown corpus app %q", args[0])
	}
	fmt.Printf("// %s — category %s, %d ground-truth path(s)\n", app.Name, app.Category, app.GroundTruth)
	if app.Runnable {
		fmt.Printf("// runnable: source %s, profile %s (off-path %d, on-path %d)\n",
			app.SourceName, app.Profile, app.OffPathWeight, app.OnPathWeight)
		fmt.Printf("// policy: %s\n", strings.Join(strings.Fields(app.PolicyJSON), " "))
	}
	fmt.Println(app.Source)
	return nil
}

func cmdAttack(args []string) error {
	apps := corpus.AttackApps()
	if len(args) == 1 && args[0] == "-run" {
		res, err := harness.RunAttackCorpus(harness.AttackOptions{Parallel: harness.DefaultParallelism()})
		if err != nil {
			return err
		}
		fmt.Print(harness.RenderAttack(res))
		if res.FN > 0 || res.Passed != len(res.Apps) {
			return fmt.Errorf("attack corpus: %d missed flow(s), %d app(s) failed", res.FN, len(res.Apps)-res.Passed)
		}
		return nil
	}
	if len(args) == 0 {
		fmt.Printf("%-22s %-38s %10s %10s\n", "name", "vector", "must-catch", "must-allow")
		for _, a := range apps {
			fmt.Printf("%-22s %-38s %10d %10d\n", a.Name, a.Vector, len(a.MustCatch), len(a.MustAllow))
		}
		return nil
	}
	app := corpus.AttackByName(apps, args[0])
	if app == nil {
		return fmt.Errorf("unknown attack app %q", args[0])
	}
	fmt.Printf("// %s — %s\n", app.Name, app.Vector)
	fmt.Printf("// must catch: %s\n", strings.Join(app.MustCatch, ", "))
	if len(app.MustAllow) > 0 {
		fmt.Printf("// must allow: %s\n", strings.Join(app.MustAllow, ", "))
	}
	fmt.Printf("// policy: %s\n", strings.Join(strings.Fields(app.Policy), " "))
	fmt.Println(app.Source)
	return nil
}

func cmdCheckPolicy(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("check-policy takes exactly one policy file")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	ip := interp.New()
	pol, err := policy.ParseJSON(data, ip.CompileLabelFunc)
	if err != nil {
		return err
	}
	fmt.Printf("policy OK: %d labeller(s), %d rule(s), %d injection(s), mode %v\n",
		len(pol.Labellers), len(pol.Rules), len(pol.Injections), pol.Mode)
	fmt.Printf("labels: %v\n", pol.Graph.Labels())
	if pol.HasCNF() {
		fmt.Printf("cnf: %d exchange(s), %d declassifier(s), %d endorsement(s)\n",
			len(pol.Exchanges), len(pol.Declassifiers), len(pol.Endorsements))
	}
	return nil
}
