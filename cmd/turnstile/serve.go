package main

import (
	"flag"
	"fmt"

	"turnstile/internal/harness"
	"turnstile/internal/serve"
	"turnstile/internal/telemetry"
)

// cmdServe hosts a multi-tenant fleet on the serve daemon: n well-behaved
// corpus tenants (optionally joined by the hostile crash+attack tenant)
// driven to completion — arrivals, admission, shedding, drain — on the
// virtual clock, with the per-tenant summary table and the telemetry
// flush printed at the end. Deterministic for a fixed -seed at any
// -parallel level.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	tenants := fs.Int("tenants", 4, "well-behaved tenant count (corpus apps, round-robin)")
	messages := fs.Int("messages", 40, "messages per tenant")
	seed := fs.Int64("seed", 1, "arrival-trace seed")
	hostile := fs.Bool("hostile", false, "add the adversarial crash+attack tenant")
	parallel := fs.Int("parallel", 1, "tenant worker count")
	metrics := fs.Bool("metrics", false, "print the serve.* telemetry counters")
	dlq := fs.Bool("dlq", false, "list every tenant's dead-letter queue")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var m *telemetry.Metrics
	if *metrics {
		m = telemetry.NewMetrics()
	}
	fleet, err := harness.BuildServeFleet(harness.ServeFleetOptions{
		Tenants: *tenants, Messages: *messages, Seed: *seed, Hostile: *hostile, Metrics: m,
	})
	if err != nil {
		return err
	}
	rep, err := (&serve.Server{Tenants: fleet}).Run(*parallel)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if *dlq {
		for _, t := range rep.Tenants {
			for _, d := range t.DLQ {
				fmt.Printf("dlq %s idx=%d arrival=%d reason=%s payload=%s\n",
					t.Name, d.Idx, d.Arrival, d.Reason, d.Payload)
			}
		}
	}
	if m != nil {
		fmt.Print(m.Render())
	}
	return nil
}
