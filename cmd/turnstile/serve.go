package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"turnstile/internal/durable"
	"turnstile/internal/harness"
	"turnstile/internal/serve"
	"turnstile/internal/telemetry"
)

// manifestName is the state-directory file recording the fleet parameters,
// so -resume (and turnstile dlq -state) can rebuild the same tenant
// universes the WALs were written against.
const manifestName = "manifest.json"

// serveManifest pins the fleet a state directory belongs to.
type serveManifest struct {
	Tenants  int   `json:"tenants"`
	Messages int   `json:"messages"`
	Seed     int64 `json:"seed"`
	Hostile  bool  `json:"hostile"`
}

// writeManifest records the fleet parameters atomically in the store.
func writeManifest(store durable.Store, m serveManifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return store.WriteFile(manifestName, data)
}

// readManifest loads the fleet parameters; ok is false when the directory
// holds no manifest (a fresh state dir).
func readManifest(store durable.Store) (serveManifest, bool, error) {
	var m serveManifest
	data, err := store.ReadFile(manifestName)
	if err != nil || data == nil {
		return m, false, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, false, fmt.Errorf("state manifest unreadable: %w", err)
	}
	return m, true, nil
}

// manifestFleet rebuilds the fleet a manifest describes.
func manifestFleet(m serveManifest, metrics *telemetry.Metrics) ([]serve.TenantConfig, error) {
	return harness.BuildServeFleet(harness.ServeFleetOptions{
		Tenants: m.Tenants, Messages: m.Messages, Seed: m.Seed, Hostile: m.Hostile, Metrics: metrics,
	})
}

// cmdServe hosts a multi-tenant fleet on the serve daemon: n well-behaved
// corpus tenants (optionally joined by the hostile crash+attack tenant)
// driven to completion — arrivals, admission, shedding, drain — on the
// virtual clock, with the per-tenant summary table and the telemetry
// flush printed at the end. Deterministic for a fixed -seed at any
// -parallel level.
//
// With -state DIR every tenant transition is also committed to a
// checksummed write-ahead log (plus periodic snapshots) in DIR before the
// daemon moves on, and -resume recovers the fleet recorded there —
// replaying each tenant's verified history through a fresh driver so taint
// is re-derived, then continuing whatever work the previous run left
// queued. A tenant whose durable state does not verify resumes poisoned
// with its sinks denied.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	tenants := fs.Int("tenants", 4, "well-behaved tenant count (corpus apps, round-robin)")
	messages := fs.Int("messages", 40, "messages per tenant")
	seed := fs.Int64("seed", 1, "arrival-trace seed")
	hostile := fs.Bool("hostile", false, "add the adversarial crash+attack tenant")
	parallel := fs.Int("parallel", 1, "tenant worker count")
	metrics := fs.Bool("metrics", false, "print the serve.* telemetry counters")
	dlq := fs.Bool("dlq", false, "list every tenant's dead-letter queue")
	state := fs.String("state", "", "durable state directory (WAL + snapshots; survives restarts)")
	resume := fs.Bool("resume", false, "recover and resume the fleet recorded in -state")
	snapEvery := fs.Int("snapevery", 0, "snapshot cadence in WAL records (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var m *telemetry.Metrics
	if *metrics {
		m = telemetry.NewMetrics()
	}

	var store durable.Store
	manifest := serveManifest{Tenants: *tenants, Messages: *messages, Seed: *seed, Hostile: *hostile}
	if *state != "" {
		fstore, err := durable.NewFileStore(*state)
		if err != nil {
			return err
		}
		defer fstore.Close()
		store = fstore
		recorded, ok, err := readManifest(store)
		if err != nil {
			return err
		}
		switch {
		case *resume && !ok:
			return fmt.Errorf("serve: nothing to resume: %s holds no fleet manifest", *state)
		case *resume:
			// the recorded fleet wins: the WALs were written against it
			manifest = recorded
			fmt.Fprintf(os.Stderr, "resuming fleet from %s: %d tenant(s), %d message(s), seed %d, hostile %v\n",
				*state, manifest.Tenants, manifest.Messages, manifest.Seed, manifest.Hostile)
		case ok:
			return fmt.Errorf("serve: %s already holds a fleet; pass -resume (or use a fresh directory)", *state)
		default:
			if err := writeManifest(store, manifest); err != nil {
				return err
			}
		}
	} else if *resume {
		return fmt.Errorf("serve: -resume requires -state")
	}

	fleet, err := manifestFleet(manifest, m)
	if err != nil {
		return err
	}
	rep, err := (&serve.Server{Tenants: fleet, Store: store, SnapshotEvery: *snapEvery}).Run(*parallel)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if *dlq {
		for _, t := range rep.Tenants {
			for _, d := range t.DLQ {
				fmt.Printf("dlq %s idx=%d arrival=%d reason=%s payload=%s\n",
					t.Name, d.Idx, d.Arrival, d.Reason, d.Payload)
			}
		}
	}
	if m != nil {
		fmt.Print(m.Render())
	}
	return nil
}
