package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"turnstile/internal/instrument"
	"turnstile/internal/interp"
	"turnstile/internal/nodered"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/printer"
	"turnstile/internal/taint"
)

// cmdFlow deploys a Node-RED flow from privacy-managed node packages and
// injects messages — the §5 case-study workflow as a command:
//
//	turnstile flow -flow flow.json -policy p.json -inject nodeID node1.js node2.js
func cmdFlow(args []string) error {
	fs := flag.NewFlagSet("flow", flag.ExitOnError)
	flowPath := fs.String("flow", "", "flow definition JSON (required)")
	policyPath := fs.String("policy", "", "IFC policy JSON file")
	injectNode := fs.String("inject", "", "node ID to inject messages into (default: first node)")
	messages := fs.Int("messages", 5, "number of messages to inject")
	payload := fs.String("payload", "msg-%d", "payload format (one %d verb)")
	mode := fs.String("mode", "selective", "instrumentation mode: selective or exhaustive")
	enforce := fs.Bool("enforce", true, "block violating flows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *flowPath == "" {
		return fmt.Errorf("flow: -flow is required")
	}
	flowData, err := os.ReadFile(*flowPath)
	if err != nil {
		return err
	}
	flow, err := nodered.ParseFlowJSON(flowData)
	if err != nil {
		return err
	}
	pkgPaths := fs.Args()
	if len(pkgPaths) == 0 {
		return fmt.Errorf("flow: no node package files given")
	}
	sort.Strings(pkgPaths)

	policyJSON := `{"rules":[]}`
	if *policyPath != "" {
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			return err
		}
		policyJSON = string(data)
	}

	ip := interp.New()
	pol, err := policy.ParseJSON([]byte(policyJSON), ip.CompileLabelFunc)
	if err != nil {
		return err
	}
	tr := ip.InstallTracker(pol)
	tr.Enforce = *enforce
	rt := nodered.New(ip)

	instMode := instrument.Selective
	if *mode == "exhaustive" {
		instMode = instrument.Exhaustive
	}

	// analyze all packages together, then load the managed versions
	var files []taint.File
	progs := map[string]string{}
	for _, p := range pkgPaths {
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		prog, err := parser.Parse(p, string(data))
		if err != nil {
			return err
		}
		files = append(files, taint.File{Name: p, Prog: prog})
		progs[p] = string(data)
	}
	analysis := taint.Analyze(files, taint.DefaultOptions())
	fmt.Printf("analysis: %d privacy-sensitive path(s) across %d package(s)\n",
		len(analysis.Paths), len(files))
	for _, f := range files {
		res, err := instrument.Instrument(f.Prog, instrument.Options{
			Mode:       instMode,
			Selection:  instrument.Selection(analysis.SelectionFor(f.Name)),
			Injections: pol.Injections,
			File:       f.Name,
		})
		if err != nil {
			return err
		}
		if err := rt.LoadPackage(f.Name, printer.Print(res.Program)); err != nil {
			return err
		}
		fmt.Printf("loaded %-30s %d label(s), %d invoke(s)\n", f.Name, res.Labels, res.Invokes)
	}

	if err := rt.Deploy(flow); err != nil {
		return err
	}
	target := *injectNode
	if target == "" {
		target = flow.Nodes[0].ID
	}
	fmt.Printf("deployed flow %q (%d nodes); injecting %d message(s) into %q\n",
		flow.Label, len(flow.Nodes), *messages, target)
	for i := 0; i < *messages; i++ {
		msg := interp.NewObject()
		msg.Set("payload", fmt.Sprintf(*payload, i))
		if err := rt.Inject(target, msg); err != nil {
			fmt.Printf("  message %d BLOCKED: %v\n", i, err)
		}
	}
	fmt.Printf("deliveries: %d, sink writes: %d, violations: %d\n",
		len(rt.Deliveries), len(ip.IO.Writes), len(tr.Violations()))
	for _, v := range tr.Violations() {
		fmt.Println("  violation:", v.Error())
	}
	return nil
}
