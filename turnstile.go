// Package turnstile is the public API of the Turnstile reproduction — a
// hybrid information-flow-control (IFC) framework for managing privacy in
// IoT applications (EuroSys '26).
//
// Turnstile combines a fast static taint analysis that identifies
// privacy-sensitive code paths with a self-contained dynamic information
// flow tracker (DIFT) that is fused into the application through selective
// code instrumentation. The managed application runs on the same runtime
// platform as the original and enforces a developer-written IFC policy:
// value-dependent privacy labels, a rule DAG over labels, and injection
// points mapping source-code objects to label functions.
//
// Quick start:
//
//	app, err := turnstile.Manage(map[string]string{"main.js": src}, policyJSON, turnstile.DefaultOptions())
//	...
//	err = app.Emit("net.socket:cam:554", "data", frame) // returns a violation error for forbidden flows
//
// The subject language is MiniJS, an ES6-subset JavaScript dialect
// executed by the bundled interpreter (the stand-in for Node.js); the
// analyzers, instrumentor, tracker, Node-RED-style flow runtime, the
// 61-app evaluation corpus and the experiment harness live in the internal
// packages and are re-exported here where part of the supported surface.
package turnstile

import (
	"turnstile/internal/core"
	"turnstile/internal/dift"
	"turnstile/internal/instrument"
	"turnstile/internal/policy"
	"turnstile/internal/taint"
)

// Options configures the management pipeline.
type Options = core.Options

// ManagedApp is a deployed privacy-managed application.
type ManagedApp = core.ManagedApp

// AnalysisResult is the Dataflow Analyzer's output.
type AnalysisResult = taint.Result

// Path is one privacy-sensitive dataflow from an I/O source to a sink.
type Path = taint.Path

// Policy is a parsed IFC policy (labellers, rule DAG, injections).
type Policy = policy.Policy

// Violation is one forbidden flow detected at run time.
type Violation = dift.Violation

// Label is a privacy label; LabelSet is a compound label.
type (
	Label    = policy.Label
	LabelSet = policy.LabelSet
)

// Instrumentation modes.
const (
	Selective  = instrument.Selective
	Exhaustive = instrument.Exhaustive
)

// DefaultOptions returns the paper's configuration: selective
// instrumentation, enforcement on, type-sensitive analysis.
func DefaultOptions() Options { return core.DefaultOptions() }

// Manage analyzes, instruments and deploys an application with its IFC
// policy — the full workflow of Fig. 3.
func Manage(sources map[string]string, policyJSON string, opts Options) (*ManagedApp, error) {
	return core.Manage(sources, policyJSON, opts)
}

// Analyze runs only the static Dataflow Analyzer.
func Analyze(sources map[string]string) (*AnalysisResult, error) {
	return core.Analyze(sources, taint.DefaultOptions())
}
