package turnstile_test

import (
	"fmt"

	"turnstile"
)

// ExampleManage runs the complete Turnstile workflow on a tiny application:
// static analysis, selective instrumentation, deployment, and run-time
// enforcement of a value-dependent IFC policy.
func ExampleManage() {
	src := `
const net = require("net");
const fs = require("fs");
const sock = net.connect({ host: "meter", port: 7 });
const archive = fs.createWriteStream("/readings");
sock.on("data", reading => {
  archive.write("r=" + reading);
});
`
	// readings containing "kWh" are billing-grade (restricted); the archive
	// only accepts audit-grade data.
	policy := `{
	  "labellers": {
	    "Reading": "v => v.indexOf(\"kWh\") >= 0 ? \"billing\" : \"audit\"",
	    "Archive": "v => \"audit\""
	  },
	  "rules": [ "audit -> billing" ],
	  "injections": [
	    { "object": "reading", "labeller": "Reading" },
	    { "object": "archive", "labeller": "Archive" }
	  ]
	}`
	app, err := turnstile.Manage(map[string]string{"meter.js": src}, policy, turnstile.DefaultOptions())
	if err != nil {
		fmt.Println("manage:", err)
		return
	}
	fmt.Println("paths found:", len(app.Analysis.Paths))

	if err := app.Emit("net.socket:meter:7", "data", "42 units"); err == nil {
		fmt.Println("audit-grade reading archived")
	}
	if err := app.Emit("net.socket:meter:7", "data", "42 kWh"); err != nil {
		fmt.Println("billing-grade reading blocked")
	}
	fmt.Println("writes:", len(app.Writes()), "violations:", len(app.Violations()))
	// Output:
	// paths found: 1
	// audit-grade reading archived
	// billing-grade reading blocked
	// writes: 1 violations: 1
}

// ExampleAnalyze shows the static Dataflow Analyzer in isolation.
func ExampleAnalyze() {
	res, err := turnstile.Analyze(map[string]string{"app.js": `
const fs = require("fs");
fs.createReadStream("/camera").on("data", frame => {
  fs.writeFileSync("/archive", frame);
});
`})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, p := range res.Paths {
		fmt.Printf("%s → %s\n", p.SourceKind, p.SinkKind)
	}
	// Output:
	// fs.stream.on(data) → fs.writeFileSync
}
