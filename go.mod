module turnstile

go 1.24
