package turnstile_test

import (
	"strings"
	"testing"

	"turnstile"
)

// The FaceRecognizer application of Fig. 2a and the IFC policy of Fig. 4.
const appSource = `
const net = require("net");
const mqtt = require("mqtt");
const nodemailer = require("nodemailer");
const fs = require("fs");
const socket = net.connect({ host: "cam", port: 554 });
const client = mqtt.connect("mqtt://locks");
const transport = nodemailer.createTransport({});
const archive = fs.createWriteStream("/archive/frames");

const deviceControl = { send: function(p) { client.publish("door/open", p.name); return "ok" } };
const emailSender = { send: function(s) { transport.sendMail({ to: "admin@corp", attachments: [s] }); return "ok" } };
const storage = { send: function(s) { archive.write(s.location); return "ok" } };

socket.on("data", frame => {
  const scene = analyzeVideoFrame(frame);
  for (let person of scene.persons) {
    person.description = person.action + " at " + scene.location;
    if (person.employeeID) {
      deviceControl.send(person);
    }
  }
  emailSender.send(scene);
  storage.send(scene);
});

function analyzeVideoFrame(frame) {
  const persons = [];
  for (let part of frame.split("|")) {
    const bits = part.split(":");
    const p = { name: bits[0], action: "walking" };
    if (bits[1] !== "") { p.employeeID = bits[1]; }
    persons.push(p);
  }
  return { persons: persons, location: "lobby" };
}
`

const policyJSON = `{
  "labellers": {
    "Scene": { "persons": { "$map": "item => item.employeeID ? \"employee\" : \"customer\"" } },
    "EmployeeSink": "v => \"employee\"",
    "InternalSink": "v => \"internal\""
  },
  "rules": [ "employee -> customer", "customer -> internal" ],
  "injections": [
    { "object": "scene", "labeller": "Scene" },
    { "object": "deviceControl", "labeller": "EmployeeSink" },
    { "object": "storage", "labeller": "InternalSink" },
    { "object": "emailSender", "labeller": "InternalSink" }
  ]
}`

func TestAnalyzePublicAPI(t *testing.T) {
	res, err := turnstile.Analyze(map[string]string{"face-recognizer.js": appSource})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) == 0 {
		t.Fatal("no privacy-sensitive paths found")
	}
	for _, p := range res.Paths {
		if p.Source.File != "face-recognizer.js" {
			t.Fatalf("path = %+v", p)
		}
	}
}

func TestManageEndToEnd(t *testing.T) {
	app, err := turnstile.Manage(
		map[string]string{"face-recognizer.js": appSource}, policyJSON,
		turnstile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(app.Instrumented["face-recognizer.js"], "__t.") {
		t.Fatal("no instrumentation in managed source")
	}
	// employee frames may flow everywhere
	if err := app.Emit("net.socket:cam:554", "data", "kim:E7"); err != nil {
		t.Fatalf("employee frame blocked: %v", err)
	}
	if n := len(app.Violations()); n != 0 {
		t.Fatalf("violations = %d", n)
	}
}

func TestManageBlocksForbiddenFlow(t *testing.T) {
	// tighten the policy: the email sink only accepts employee-level data,
	// so a frame containing a customer must be blocked.
	strict := strings.Replace(policyJSON,
		`{ "object": "emailSender", "labeller": "InternalSink" }`,
		`{ "object": "emailSender", "labeller": "EmployeeSink" }`, 1)
	app, err := turnstile.Manage(
		map[string]string{"face-recognizer.js": appSource}, strict,
		turnstile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	err = app.Emit("net.socket:cam:554", "data", "visitor:")
	if err == nil {
		t.Fatal("customer → employee-only sink should be blocked")
	}
	if len(app.Violations()) == 0 {
		t.Fatal("violation not recorded")
	}
	v := app.Violations()[0]
	if !v.Data.Contains("customer") {
		t.Fatalf("violation = %+v", v)
	}
}

func TestExhaustiveModePublicAPI(t *testing.T) {
	opts := turnstile.DefaultOptions()
	opts.Mode = turnstile.Exhaustive
	app, err := turnstile.Manage(map[string]string{"a.js": appSource}, policyJSON, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Emit("net.socket:cam:554", "data", "kim:E7|guest:"); err != nil {
		t.Fatal(err)
	}
	if app.Tracker.Stats().Boxed == 0 {
		t.Fatal("exhaustive mode should box values")
	}
}

func TestManageErrors(t *testing.T) {
	if _, err := turnstile.Manage(map[string]string{"bad.js": "let ="}, policyJSON, turnstile.DefaultOptions()); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := turnstile.Manage(map[string]string{"a.js": "let x = 1;"}, "{bad json", turnstile.DefaultOptions()); err == nil {
		t.Fatal("expected policy error")
	}
	app, _ := turnstile.Manage(map[string]string{"a.js": "let x = 1;"}, `{"rules":[]}`, turnstile.DefaultOptions())
	if err := app.Emit("no.such.source", "data", "x"); err == nil {
		t.Fatal("expected unknown-source error")
	}
}
