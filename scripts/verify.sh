#!/bin/sh
# Tier-1 verification gate: build, vet, tests, race-enabled tests.
# Run from the repository root: ./scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== chaos smoke (fixed seed, corpus slice)"
go run ./cmd/turnstile-bench -chaos -faultseed 7 -messages 20 \
  -apps modbus,sensor-logger,thermostat-hub > /tmp/turnstile-chaos-a.txt
go run ./cmd/turnstile-bench -chaos -faultseed 7 -messages 20 \
  -apps modbus,sensor-logger,thermostat-hub -parallel 1 > /tmp/turnstile-chaos-b.txt
cmp /tmp/turnstile-chaos-a.txt /tmp/turnstile-chaos-b.txt
rm -f /tmp/turnstile-chaos-a.txt /tmp/turnstile-chaos-b.txt

echo "== metrics determinism (overhead breakdown, differing -parallel)"
go run ./cmd/turnstile-bench -metrics -messages 20 \
  -apps modbus,sensor-logger,thermostat-hub > /tmp/turnstile-metrics-a.txt
go run ./cmd/turnstile-bench -metrics -messages 20 \
  -apps modbus,sensor-logger,thermostat-hub -parallel 1 > /tmp/turnstile-metrics-b.txt
cmp /tmp/turnstile-metrics-a.txt /tmp/turnstile-metrics-b.txt
rm -f /tmp/turnstile-metrics-a.txt /tmp/turnstile-metrics-b.txt

echo "== crash-corpus gate (typed termination, differing -parallel)"
go run ./cmd/turnstile-bench -crash > /tmp/turnstile-crash-a.txt
go run ./cmd/turnstile-bench -crash -parallel 1 > /tmp/turnstile-crash-b.txt
cmp /tmp/turnstile-crash-a.txt /tmp/turnstile-crash-b.txt
rm -f /tmp/turnstile-crash-a.txt /tmp/turnstile-crash-b.txt

echo "== attack-corpus gate (zero missed must-catch flows, differing -parallel)"
go run ./cmd/turnstile-bench -attack > /tmp/turnstile-attack-a.txt
go run ./cmd/turnstile-bench -attack -parallel 1 > /tmp/turnstile-attack-b.txt
cmp /tmp/turnstile-attack-a.txt /tmp/turnstile-attack-b.txt
grep -q "precision 1.000  recall 1.000" /tmp/turnstile-attack-a.txt
rm -f /tmp/turnstile-attack-a.txt /tmp/turnstile-attack-b.txt

echo "== resolver differential: attack corpus, slot env vs -noresolve map walk"
go run ./cmd/turnstile-bench -attack > /tmp/turnstile-resattack-a.txt
go run ./cmd/turnstile-bench -attack -noresolve > /tmp/turnstile-resattack-b.txt
cmp /tmp/turnstile-resattack-a.txt /tmp/turnstile-resattack-b.txt
rm -f /tmp/turnstile-resattack-a.txt /tmp/turnstile-resattack-b.txt

echo "== CNF fuzz smoke (normalize/join/exchange laws)"
go test ./internal/policy -run '^$' -fuzz FuzzCNFNormalize -fuzztime 5s -race

echo "== resolver differential: chaos report, slot env vs -noresolve map walk"
go run ./cmd/turnstile-bench -chaos -faultseed 7 -messages 20 \
  -apps modbus,sensor-logger,thermostat-hub > /tmp/turnstile-resolve-a.txt
go run ./cmd/turnstile-bench -chaos -faultseed 7 -messages 20 \
  -apps modbus,sensor-logger,thermostat-hub -noresolve > /tmp/turnstile-resolve-b.txt
cmp /tmp/turnstile-resolve-a.txt /tmp/turnstile-resolve-b.txt
rm -f /tmp/turnstile-resolve-a.txt /tmp/turnstile-resolve-b.txt

echo "== resolver differential: crash corpus (fail-closed), slot env vs -noresolve"
go run ./cmd/turnstile-bench -crash > /tmp/turnstile-rescrash-a.txt
go run ./cmd/turnstile-bench -crash -noresolve > /tmp/turnstile-rescrash-b.txt
cmp /tmp/turnstile-rescrash-a.txt /tmp/turnstile-rescrash-b.txt
rm -f /tmp/turnstile-rescrash-a.txt /tmp/turnstile-rescrash-b.txt

echo "== VM differential: chaos report, bytecode VM vs -novm tree walk"
go run ./cmd/turnstile-bench -chaos -faultseed 7 -messages 20 \
  -apps modbus,sensor-logger,thermostat-hub > /tmp/turnstile-vmchaos-a.txt
go run ./cmd/turnstile-bench -chaos -faultseed 7 -messages 20 \
  -apps modbus,sensor-logger,thermostat-hub -novm > /tmp/turnstile-vmchaos-b.txt
cmp /tmp/turnstile-vmchaos-a.txt /tmp/turnstile-vmchaos-b.txt
rm -f /tmp/turnstile-vmchaos-a.txt /tmp/turnstile-vmchaos-b.txt

echo "== VM differential: attack corpus, bytecode VM vs -novm tree walk"
go run ./cmd/turnstile-bench -attack > /tmp/turnstile-vmattack-a.txt
go run ./cmd/turnstile-bench -attack -novm > /tmp/turnstile-vmattack-b.txt
cmp /tmp/turnstile-vmattack-a.txt /tmp/turnstile-vmattack-b.txt
rm -f /tmp/turnstile-vmattack-a.txt /tmp/turnstile-vmattack-b.txt

echo "== VM differential: crash corpus (fail-closed), bytecode VM vs -novm"
go run ./cmd/turnstile-bench -crash > /tmp/turnstile-vmcrash-a.txt
go run ./cmd/turnstile-bench -crash -novm > /tmp/turnstile-vmcrash-b.txt
cmp /tmp/turnstile-vmcrash-a.txt /tmp/turnstile-vmcrash-b.txt
rm -f /tmp/turnstile-vmcrash-a.txt /tmp/turnstile-vmcrash-b.txt

echo "== VM differential: generated corpus, bytecode VM vs -novm, differing -parallel"
go run ./cmd/turnstile-bench -gen 56 -genseed 3 -parallel 8 > /tmp/turnstile-vmgen-a.txt
go run ./cmd/turnstile-bench -gen 56 -genseed 3 -parallel 1 -novm > /tmp/turnstile-vmgen-b.txt
cmp /tmp/turnstile-vmgen-a.txt /tmp/turnstile-vmgen-b.txt
rm -f /tmp/turnstile-vmgen-a.txt /tmp/turnstile-vmgen-b.txt

echo "== VM corpus battery (full-corpus differential, shared cache, chaos, attack)"
go test ./internal/harness -run 'TestVM(DifferentialFullCorpus|ChaosEquivalence|AttackEquivalence)'

echo "== VM shared-cache mode keying (-race; both engines through one cache)"
go test -race ./internal/harness -run TestVMSharedCacheBothModes

echo "== VM metamorphic battery (vm=walker, crash-order agreement, all strata)"
go test ./internal/harness -run 'TestGenMetamorphicVM'

echo "== VM equivalence fuzz smoke (vm = tree walker on generated apps)"
go test ./internal/harness -run '^$' -fuzz FuzzVMEquivalence -fuzztime 5s

echo "== interp fuzz smoke (no panic within fuel, -race)"
go test ./internal/interp -run '^$' -fuzz FuzzInterpNoPanicWithinFuel -fuzztime 5s -race

echo "== resolver equivalence fuzz smoke (slot env = map env)"
go test ./internal/resolve -run '^$' -fuzz FuzzResolveEquivalence -fuzztime 5s -race

echo "== telemetry-disabled overhead gate (BenchmarkDIFTOps)"
TURNSTILE_BENCH_GATE=1 go test ./internal/dift -run TestDisabledOverheadGate -v

echo "== slot-env perf gate (interpreter microbenchmarks)"
TURNSTILE_BENCH_GATE=1 go test ./internal/harness -run TestSlotEnvFasterGate -v

echo "== VM perf gate (bytecode VM vs slot-env walker; see BENCH_vm.json)"
TURNSTILE_BENCH_GATE=1 go test ./internal/harness -run TestVMFasterGate -v

echo "== serve soak smoke (2 tenants + hostile neighbour, fixed seed, differing -parallel)"
go run ./cmd/turnstile-bench -serve -servetenants 2 -servemessages 30 -serveseed 7 \
  -parallel 4 > /tmp/turnstile-serve-a.txt
go run ./cmd/turnstile-bench -serve -servetenants 2 -servemessages 30 -serveseed 7 \
  -parallel 1 > /tmp/turnstile-serve-b.txt
cmp /tmp/turnstile-serve-a.txt /tmp/turnstile-serve-b.txt
rm -f /tmp/turnstile-serve-a.txt /tmp/turnstile-serve-b.txt

echo "== serve isolation battery (hostile tenant cannot perturb neighbours)"
go test ./internal/harness -run TestServeIsolationBattery -v

echo "== generated-corpus gate (zero missed flows, differing -parallel, -noresolve)"
go run ./cmd/turnstile-bench -gen 56 -genseed 3 -parallel 8 > /tmp/turnstile-gen-a.txt
go run ./cmd/turnstile-bench -gen 56 -genseed 3 -parallel 1 > /tmp/turnstile-gen-b.txt
go run ./cmd/turnstile-bench -gen 56 -genseed 3 -noresolve > /tmp/turnstile-gen-c.txt
cmp /tmp/turnstile-gen-a.txt /tmp/turnstile-gen-b.txt
cmp /tmp/turnstile-gen-a.txt /tmp/turnstile-gen-c.txt
grep -q "must-catch flows: .* 0 missed; false positives: 0" /tmp/turnstile-gen-a.txt
grep -q "precision 1.000  recall 1.000" /tmp/turnstile-gen-a.txt
rm -f /tmp/turnstile-gen-a.txt /tmp/turnstile-gen-b.txt /tmp/turnstile-gen-c.txt

echo "== generated-corpus metamorphic battery (slot=map, flat=mirror, chaos, crash)"
go test ./internal/harness -run TestGenMetamorphic

echo "== crash-recovery battery smoke (kill at 3 WAL boundaries, byte-identical resume)"
go run ./cmd/turnstile-bench -recovery -servetenants 2 -servemessages 8 -serveseed 23 \
  -recoverymax 3 > /tmp/turnstile-recovery.txt
grep -q "verdict: PASS" /tmp/turnstile-recovery.txt
grep -q "post_restart_sinks=0" /tmp/turnstile-recovery.txt
rm -f /tmp/turnstile-recovery.txt

echo "== durable serve round trip (FileStore: resume identical, dlq survives restart)"
STATE=$(mktemp -d /tmp/turnstile-state.XXXXXX)
go run ./cmd/turnstile serve -tenants 2 -messages 10 -seed 7 -hostile \
  -state "$STATE" > /tmp/turnstile-durable-a.txt
go run ./cmd/turnstile serve -state "$STATE" -resume \
  > /tmp/turnstile-durable-b.txt 2>/dev/null
cmp /tmp/turnstile-durable-a.txt /tmp/turnstile-durable-b.txt
go run ./cmd/turnstile dlq -state "$STATE" | grep "reason=shutdown" > /dev/null
go run ./cmd/turnstile dlq -state "$STATE" -replay | grep "re-driven" > /dev/null
go run ./cmd/turnstile dlq -state "$STATE" | grep "replayed=" > /dev/null
go run ./cmd/turnstile serve -state "$STATE" -resume \
  > /tmp/turnstile-durable-c.txt 2>/dev/null
cmp /tmp/turnstile-durable-a.txt /tmp/turnstile-durable-c.txt
rm -rf "$STATE" /tmp/turnstile-durable-a.txt /tmp/turnstile-durable-b.txt /tmp/turnstile-durable-c.txt

echo "verify: OK"
