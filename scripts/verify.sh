#!/bin/sh
# Tier-1 verification gate: build, vet, tests, race-enabled tests.
# Run from the repository root: ./scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "verify: OK"
