#!/bin/sh
# Tier-1 verification gate: build, vet, tests, race-enabled tests.
# Run from the repository root: ./scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== chaos smoke (fixed seed, corpus slice)"
go run ./cmd/turnstile-bench -chaos -faultseed 7 -messages 20 \
  -apps modbus,sensor-logger,thermostat-hub > /tmp/turnstile-chaos-a.txt
go run ./cmd/turnstile-bench -chaos -faultseed 7 -messages 20 \
  -apps modbus,sensor-logger,thermostat-hub -parallel 1 > /tmp/turnstile-chaos-b.txt
cmp /tmp/turnstile-chaos-a.txt /tmp/turnstile-chaos-b.txt
rm -f /tmp/turnstile-chaos-a.txt /tmp/turnstile-chaos-b.txt

echo "verify: OK"
