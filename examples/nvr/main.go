// Network Video Recorder (NVR) — the case study of §5.
//
// A Node-RED flow of four third-party nodes: frame capture, face
// recognition (via a Deepstack-style API), frame storage (SQLite) and
// email notification (SMTP). The developer writes only the IFC policy of
// Fig. 7; Turnstile instruments the unmodified node packages and enforces
// two requirements at run time:
//
//  1. GDPR: faces of EU residents are stored only in EU databases — this
//     deployment's database is in the US, so frames with EU faces must not
//     be stored;
//
//  2. corporate hierarchy: no employee receives emailed frames of a
//     higher-ranked employee (L1 ⊑ L2 ⊑ L3) — enforced with a dynamic
//     receiver label computed from the recipient address at sendMail time.
//
//     go run ./examples/nvr
package main

import (
	"fmt"
	"log"

	"turnstile/internal/instrument"
	"turnstile/internal/interp"
	"turnstile/internal/nodered"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/printer"
	"turnstile/internal/taint"
)

// employeeDirectory is shared application state: the label functions of
// the IFC policy look employees up by ID and email (Fig. 7, lines 3-10).
const employeeDirectory = `
const EMPLOYEES = {
  "E7": { name: "kim",  region: "EU", level: "L3", email: "kim@corp" },
  "E9": { name: "lee",  region: "US", level: "L2", email: "lee@corp" },
  "E2": { name: "sana", region: "US", level: "L1", email: "sana@corp" },
  "E5": { name: "raj",  region: "US", level: "L3", email: "raj@corp" }
};
function getEmployeeById(id) {
  return EMPLOYEES[id] || { region: "US", level: "L1", email: "unknown@corp" };
}
function getEmployeeByEmail(email) {
  for (const id in EMPLOYEES) {
    if (EMPLOYEES[id].email === email) { return EMPLOYEES[id]; }
  }
  return { region: "US", level: "L1" };
}
`

// face-recognition.js — the third-party node of Fig. 6a: it calls the
// Deepstack face-recognition API and attaches the predictions to the
// message.
const faceRecognitionNode = `
module.exports = function(RED) {
  const deepstack = require("node-red-contrib-deepstack");
  function FaceRecognitionNode(config) {
    RED.nodes.createNode(this, config);
    const node = this;
    node.on("input", function(msg, send, done) {
      deepstack.faceRecognition(msg.frame, config.server, config.confidence)
        .then(result => {
          msg.payload = result.predictions;
          send(msg);
          done();
        });
    });
  }
  RED.nodes.registerType("face-recognition", FaceRecognitionNode);
};
`

// frame-storage.js — stores recognized frames in SQLite.
const frameStorageNode = `
module.exports = function(RED) {
  const sqlite3 = require("sqlite3");
  function FrameStorageNode(config) {
    RED.nodes.createNode(this, config);
    const db = new sqlite3.Database(config.path);
    const node = this;
    node.on("input", function(msg, send, done) {
      db.run("INSERT INTO frames (faces) VALUES (?)", msg.payload);
      done();
    });
  }
  RED.nodes.registerType("frame-storage", FrameStorageNode);
};
`

// email-notification.js — the node of Fig. 6b: it emails the frame to the
// requested recipient.
const emailNotificationNode = `
module.exports = function(RED) {
  const nodemailer = require("nodemailer");
  function EmailNotificationNode(config) {
    RED.nodes.createNode(this, config);
    const smtpTransport = nodemailer.createTransport({ host: config.host });
    const node = this;
    node.on("input", function(msg, send, done) {
      const sendopts = {
        to: msg.to,
        attachments: msg.payload
      };
      smtpTransport.sendMail(sendopts, function(error, info) {
        done();
      });
    });
  }
  RED.nodes.registerType("email-notification", EmailNotificationNode);
};
`

// The IFC policy of Fig. 7: region and clearance-level labels, a dynamic
// $invoke label on sendMail, and a region label on the database.
const policyJSON = `{
  "labellers": {
    "onRecognize": { "predictions": { "$map":
      "item => { let employee = getEmployeeById(item.userid); return [ employee.region, employee.level ]; }" } },
    "mailer": { "sendMail": { "$invoke":
      "(object, args) => getEmployeeByEmail(args[0].to).level" } },
    "dbRegion": "db => \"US\""
  },
  "rules": [ "US -> EU", "L1 -> L2", "L2 -> L3" ],
  "injections": [
    { "file": "face-recognition.js", "object": "result", "labeller": "onRecognize" },
    { "file": "email-notification.js", "object": "smtpTransport", "labeller": "mailer" },
    { "file": "frame-storage.js", "object": "db", "labeller": "dbRegion" }
  ]
}`

// deepstackModule registers a stand-in for the Deepstack API: it
// "recognizes" the employee IDs encoded in the synthetic frame.
func deepstackModule(ip *interp.Interp) *interp.Object {
	m := interp.NewObject()
	m.Set("faceRecognition", interp.NewHostFunc("faceRecognition",
		func(ip *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
			result := interp.NewObject()
			preds := interp.NewArray()
			if len(args) > 0 {
				frame := interp.ToString(args[0])
				for start := 0; start < len(frame); start++ {
					if frame[start] == 'E' && start+1 < len(frame) {
						p := interp.NewObject()
						p.Set("userid", frame[start:start+2])
						p.Set("confidence", 0.97)
						preds.Elems = append(preds.Elems, p)
						start++
					}
				}
			}
			result.Set("predictions", preds)
			result.Set("success", true)
			return ip.NewPromise(result, false), nil
		}))
	return m
}

func main() {
	ip := interp.New()
	ip.RegisterModule("node-red-contrib-deepstack", deepstackModule(ip))

	// shared employee directory, visible to policy label functions
	dir, err := parser.Parse("directory.js", employeeDirectory)
	if err != nil {
		log.Fatal(err)
	}
	if err := ip.Run(dir); err != nil {
		log.Fatal(err)
	}

	pol, err := policy.ParseJSON([]byte(policyJSON), ip.CompileLabelFunc)
	if err != nil {
		log.Fatal(err)
	}
	tracker := ip.InstallTracker(pol)
	tracker.Enforce = true

	rt := nodered.New(ip)

	// analyze + selectively instrument every third-party node package,
	// then load the privacy-managed versions (the Fig. 3 workflow)
	packages := map[string]string{
		"face-recognition.js":   faceRecognitionNode,
		"frame-storage.js":      frameStorageNode,
		"email-notification.js": emailNotificationNode,
	}
	for name, src := range packages {
		prog, err := parser.Parse(name, src)
		if err != nil {
			log.Fatal(err)
		}
		analysis := taint.Analyze([]taint.File{{Name: name, Prog: prog}}, taint.DefaultOptions())
		res, err := instrument.Instrument(prog, instrument.Options{
			Mode:       instrument.Selective,
			Selection:  instrument.Selection(analysis.SelectionFor(name)),
			Injections: pol.Injections,
			File:       name,
		})
		if err != nil {
			log.Fatal(err)
		}
		managed := printer.Print(res.Program)
		if err := rt.LoadPackage(name, managed); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %-24s %d paths found, %d labels / %d invokes injected\n",
			name, len(analysis.Paths), res.Labels, res.Invokes)
	}

	// the NVR flow: recognition fans out to storage and email
	flow := &nodered.Flow{
		Label: "network-video-recorder",
		Nodes: []nodered.NodeDef{
			{ID: "recognize", Type: "face-recognition",
				Config: map[string]any{"server": "http://deepstack:5000", "confidence": 0.8},
				Wires:  [][]string{{"store", "notify"}}},
			{ID: "store", Type: "frame-storage",
				Config: map[string]any{"path": "/var/nvr/us-east.db"}},
			{ID: "notify", Type: "email-notification",
				Config: map[string]any{"host": "smtp.corp"}},
		},
	}
	if err := rt.Deploy(flow); err != nil {
		log.Fatal(err)
	}

	scenarios := []struct {
		desc, frame, to string
	}{
		{"US L2 employee lee on camera, emailed up to L3 kim", "frame[E9]", "kim@corp"},
		{"US L1 employee sana on camera, emailed up to L2 lee", "frame[E2]", "lee@corp"},
		{"US L3 employee raj on camera, emailed DOWN to L2 lee", "frame[E5]", "lee@corp"},
		{"EU L3 employee kim on camera (GDPR: US database)", "frame[E7]", "kim@corp"},
	}
	for _, s := range scenarios {
		fmt.Printf("\nscenario: %s\n", s.desc)
		before := len(tracker.Violations())
		msg := interp.NewObject()
		msg.Set("frame", s.frame)
		msg.Set("to", s.to)
		err := rt.Inject("recognize", msg)
		newViolations := tracker.Violations()[before:]
		switch {
		case err != nil:
			fmt.Printf("  BLOCKED: %v\n", err)
		case len(newViolations) > 0:
			// the violation surfaced as a rejected Promise inside the flow
			// (JavaScript semantics); the forbidden write was prevented
			for _, v := range newViolations {
				fmt.Printf("  BLOCKED at %s: %v may not flow to %v\n", v.Site, v.Data, v.Recv)
			}
		default:
			fmt.Println("  processed without violation")
		}
	}

	fmt.Printf("\nsink writes: %d, violations: %d\n", len(ip.IO.Writes), len(tracker.Violations()))
	for _, w := range ip.IO.Writes {
		fmt.Printf("  %s/%s → %s\n", w.Module, w.Op, w.Target)
	}
	for _, v := range tracker.Violations() {
		fmt.Printf("  violation at %s: %v ↛ %v\n", v.Site, v.Data, v.Recv)
	}
}
