// Smart Access Control System (SACS) — the motivating example of §3.
//
// A distributed application with six components: an RTSP camera stream, a
// face recognizer, cloud storage, a device controller driving smart door
// locks over MQTT, and an email notifier. Three components are written by
// the developer (FaceRecognizer, DeviceControl, EmailSender); the rest are
// third-party (camera firmware, storage SaaS, lock firmware).
//
// Turnstile retrofits privacy control onto the composition without
// modifying any platform: the whole pipeline is analyzed, the
// privacy-sensitive paths are instrumented, and the inlined tracker
// enforces two rules at run time:
//
//  1. frames containing only employees may drive the door lock;
//
//  2. frames containing visitors may be archived but must not be emailed
//     to the administrators unless an employee is present (company policy:
//     admins see employee activity, not visitor footage).
//
//     go run ./examples/sacs
package main

import (
	"fmt"
	"log"

	"turnstile"
)

// faceRecognizer.js — the developer's central component (Fig. 2a, adapted
// to the host I/O modules). It consumes the camera stream and fans out to
// the downstream services.
const faceRecognizer = `
const net = require("net");
const rtsp = net.connect({ host: "rtsp-cam", port: 554 });
const deviceControl = require("./device-control");
const emailSender = require("./email-sender");
const storageService = require("./storage-service");

rtsp.on("data", frame => {
  const scene = analyzeVideoFrame(frame);
  for (let person of scene.persons) {
    person.description = person.action + " at " + scene.location;
    if (person.employeeID) {
      deviceControl.send(person);
    }
  }
  emailSender.send(scene);
  storageService.send(scene);
});

function analyzeVideoFrame(frame) {
  const persons = [];
  for (let part of frame.split("|")) {
    const bits = part.split(":");
    const p = { name: bits[0], action: "walking" };
    if (bits[1] !== "") { p.employeeID = bits[1]; }
    persons.push(p);
  }
  return { persons: persons, location: "entrance" };
}
`

// device-control.js — runs on a PaaS; relays open commands to the door
// lock over MQTT.
const deviceControl = `
const mqtt = require("mqtt");
const client = mqtt.connect("mqtt://doorlock");
module.exports = {
  send: function(person) {
    client.publish("lock/open", person.employeeID + ":" + person.description);
  }
};
`

// email-sender.js — a serverless function sending notification emails.
const emailSender = `
const nodemailer = require("nodemailer");
const transport = nodemailer.createTransport({ host: "smtp.corp" });
module.exports = {
  send: function(scene) {
    transport.sendMail({ to: "admins@corp", attachments: [scene] });
  }
};
`

// storage-service.js — the cloud storage client.
const storageService = `
const http = require("http");
module.exports = {
  send: function(scene) {
    const req = http.request({ host: "storage.saas.example", path: "/frames" });
    req.write(scene.location + ":" + scene.persons.length);
    req.end();
  }
};
`

// The IFC policy: each person in a scene is labelled value-dependently.
// Employees have consented to monitoring; visitors have not, so visitor
// footage is *more* private (employee ⊑ visitor ⊑ archive). The lock and
// the email service are employee-level sinks: frames containing a visitor
// may be archived but not mailed to the administrators.
const policyJSON = `{
  "labellers": {
    "Scene": { "persons": { "$map": "item => item.employeeID ? \"employee\" : \"visitor\"" } },
    "LockSink": "v => \"employee\"",
    "MailSink": "v => \"employee\"",
    "StorageSink": "v => \"archive\""
  },
  "rules": [ "employee -> visitor", "visitor -> archive" ],
  "injections": [
    { "file": "faceRecognizer.js", "object": "scene", "labeller": "Scene" },
    { "file": "faceRecognizer.js", "object": "deviceControl", "labeller": "LockSink" },
    { "file": "faceRecognizer.js", "object": "emailSender", "labeller": "MailSink" },
    { "file": "faceRecognizer.js", "object": "storageService", "labeller": "StorageSink" }
  ]
}`

func main() {
	sources := map[string]string{
		"faceRecognizer.js":  faceRecognizer,
		"device-control.js":  deviceControl,
		"email-sender.js":    emailSender,
		"storage-service.js": storageService,
	}

	analysis, err := turnstile.Analyze(sources)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static analysis: %d privacy-sensitive paths across %d files (%v)\n",
		len(analysis.Paths), len(sources), analysis.Duration)
	for _, p := range analysis.Paths {
		fmt.Printf("  %s → %s (%s)\n", p.Source, p.Sink, p.SinkKind)
	}

	app, err := turnstile.Manage(sources, policyJSON, turnstile.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	frames := []struct {
		desc, payload string
	}{
		{"employee kim badges in", "kim:E7"},
		{"employee kim with employee lee", "kim:E7|lee:E9"},
		{"a visitor appears alone", "stranger:"},
		{"visitor together with an employee", "kim:E7|stranger:"},
	}
	for _, f := range frames {
		fmt.Printf("\nframe: %s (%q)\n", f.desc, f.payload)
		err := app.Emit("net.socket:rtsp-cam:554", "data", f.payload)
		if err != nil {
			fmt.Printf("  BLOCKED: %v\n", err)
			continue
		}
		fmt.Println("  processed without violation")
	}

	fmt.Printf("\ntotals: %d sink writes, %d violations\n", len(app.Writes()), len(app.Violations()))
	for _, w := range app.Writes() {
		fmt.Printf("  sink %s/%s → %s\n", w.Module, w.Op, w.Target)
	}
	for _, v := range app.Violations() {
		fmt.Printf("  violation at %s: %v ↛ %v\n", v.Site, v.Data, v.Recv)
	}
}
