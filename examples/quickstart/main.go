// Quickstart: manage the FaceRecognizer application of the paper's
// motivating example (Fig. 2a) with the IFC policy of Fig. 4, stream a few
// video frames into it, and watch Turnstile allow compliant flows and block
// a policy violation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"turnstile"
)

// The original, unmodified application source (Fig. 2a): a face recognizer
// that fans each analyzed scene out to a device controller, an email
// service and a storage service.
const appSource = `
const net = require("net");
const mqtt = require("mqtt");
const nodemailer = require("nodemailer");
const fs = require("fs");

const socket = net.connect({ host: "cam", port: 554 });
const client = mqtt.connect("mqtt://locks");
const transport = nodemailer.createTransport({ host: "smtp.corp" });
const archive = fs.createWriteStream("/archive/frames");

const deviceControl = { send: function(p) { client.publish("door/open", p.name); } };
const emailSender = { send: function(s) { transport.sendMail({ to: "admin@corp", attachments: [s] }); } };
const storage = { send: function(s) { archive.write(s.location); } };

socket.on("data", frame => {
  const scene = analyzeVideoFrame(frame);
  for (let person of scene.persons) {
    person.description = person.action + " at " + scene.location;
    if (person.employeeID) {
      deviceControl.send(person);
    }
  }
  emailSender.send(scene);
  storage.send(scene);
});

function analyzeVideoFrame(frame) {
  const persons = [];
  for (let part of frame.split("|")) {
    const bits = part.split(":");
    const p = { name: bits[0], action: "walking" };
    if (bits[1] !== "") { p.employeeID = bits[1]; }
    persons.push(p);
  }
  return { persons: persons, location: "lobby" };
}
`

// The IFC policy (Fig. 4): scenes are labelled value-dependently — each
// person is "employee" or "customer" based on run-time content — and the
// email sink only accepts employee-level data.
const policyJSON = `{
  "labellers": {
    "Scene": { "persons": { "$map": "item => item.employeeID ? \"employee\" : \"customer\"" } },
    "EmployeeSink": "v => \"employee\"",
    "InternalSink": "v => \"internal\""
  },
  "rules": [ "employee -> customer", "customer -> internal" ],
  "injections": [
    { "object": "scene", "labeller": "Scene" },
    { "object": "deviceControl", "labeller": "EmployeeSink" },
    { "object": "emailSender", "labeller": "EmployeeSink" },
    { "object": "storage", "labeller": "InternalSink" }
  ]
}`

func main() {
	// 1. Static analysis: find the privacy-sensitive code paths.
	analysis, err := turnstile.Analyze(map[string]string{"face-recognizer.js": appSource})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataflow analysis (%v): %d privacy-sensitive paths\n", analysis.Duration, len(analysis.Paths))
	for _, p := range analysis.Paths {
		fmt.Printf("  %-22s → %s\n", p.SourceKind, p.SinkKind)
	}

	// 2. Instrument + deploy: the managed app runs on the same runtime.
	app, err := turnstile.Manage(map[string]string{"face-recognizer.js": appSource},
		policyJSON, turnstile.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	instrumented := app.Instrumented["face-recognizer.js"]
	fmt.Printf("\ninstrumented source: %d lines, %d τ-calls injected\n",
		strings.Count(instrumented, "\n"), strings.Count(instrumented, "__t."))

	// 3. Stream frames. An employee-only frame flows everywhere.
	fmt.Println("\nframe 1: employee kim (E7) at the door")
	if err := app.Emit("net.socket:cam:554", "data", "kim:E7"); err != nil {
		fmt.Println("  BLOCKED:", err)
	} else {
		fmt.Println("  allowed: device unlocked, email sent, frame archived")
	}

	// A frame containing an unknown visitor is labelled "customer" at run
	// time; customer data may not flow to the employee-only email sink.
	fmt.Println("\nframe 2: unknown visitor in the frame")
	if err := app.Emit("net.socket:cam:554", "data", "visitor:"); err != nil {
		fmt.Println("  BLOCKED:", err)
	} else {
		fmt.Println("  allowed")
	}

	fmt.Printf("\nsink writes: %d, violations recorded: %d\n", len(app.Writes()), len(app.Violations()))
	for _, v := range app.Violations() {
		fmt.Printf("  %s: data %v → receiver %v\n", v.Site, v.Data, v.Recv)
	}
}
