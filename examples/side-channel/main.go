// Side channel: the §4.6 example Turnstile explicitly does not catch in
// its default configuration — an adversary deduces whether an authorized
// person was in the frame by observing whether the door opened — run twice:
// once with the paper's explicit-flow tracking (the leak goes through) and
// once with this reproduction's opt-in implicit-flow extension (§8 future
// work), which blocks it.
//
//	go run ./examples/side-channel
package main

import (
	"fmt"
	"log"

	"turnstile"
)

// The door controller: the state written to the public log carries no
// explicit dataflow from the camera frame — only the branch taken depends
// on it.
const appSource = `
const net = require("net");
const fs = require("fs");
const publicLog = fs.createWriteStream("/public/door-state");
const camera = net.connect({ host: "cam", port: 554 });
camera.on("data", frame => {
  let doorState = "closed";
  if (frame.indexOf("E") >= 0) {   // an authorized employee badge?
    doorState = "open";
  }
  publicLog.write(doorState);
});
`

const policyJSON = `{
  "labellers": {
    "Frame": "v => \"secret\"",
    "PublicSink": "v => \"public\""
  },
  "rules": [ "public -> secret" ],
  "injections": [
    { "object": "frame", "labeller": "Frame" },
    { "object": "publicLog", "labeller": "PublicSink" }
  ]
}`

func runOnce(label string, implicit bool) {
	opts := turnstile.DefaultOptions()
	opts.ImplicitFlows = implicit
	app, err := turnstile.Manage(map[string]string{"door.js": appSource}, policyJSON, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== %s ==\n", label)
	for _, frame := range []string{"kim:E7", "visitor:"} {
		err := app.Emit("net.socket:cam:554", "data", frame)
		switch {
		case err != nil:
			fmt.Printf("  frame %-10q → BLOCKED (%v)\n", frame, err)
		default:
			w := app.Writes()
			fmt.Printf("  frame %-10q → door-state %q written to the public log\n",
				frame, w[len(w)-1].Value)
		}
	}
	fmt.Printf("  violations recorded: %d\n", len(app.Violations()))
}

func main() {
	fmt.Println("The door-state log is public; the camera frame is secret.")
	fmt.Println("Whether the door opens reveals whether an employee badge was seen.")
	runOnce("explicit flows only (the paper's default, §4.6)", false)
	runOnce("with the implicit-flow extension (§8)", true)
}
