// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6), plus ablations of the design decisions called out in DESIGN.md.
// Run with:
//
//	go test -bench=. -benchmem
//
// The full experiment runs (paper-scale message counts, all 27 apps) live
// in cmd/turnstile-bench; the benchmarks here exercise the same code paths
// at a size suited to `go test -bench`.
package turnstile_test

import (
	"runtime"
	"testing"
	"time"

	"turnstile/internal/baseline"
	"turnstile/internal/core"
	"turnstile/internal/corpus"
	"turnstile/internal/dift"
	"turnstile/internal/ghindex"
	"turnstile/internal/harness"
	"turnstile/internal/instrument"
	"turnstile/internal/interp"
	"turnstile/internal/parser"
	"turnstile/internal/policy"
	"turnstile/internal/taint"
	"turnstile/internal/workload"
)

// ---------------------------------------------------------------------------
// Table 2: framework popularity (synthetic GitHub index search)

func BenchmarkTable2FrameworkSearch(b *testing.B) {
	idx := ghindex.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := ghindex.Table2(idx)
		if rows[0].Repos != 677 {
			b.Fatalf("Node-RED repos = %d", rows[0].Repos)
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 10 / E1: path detection over the 61-app corpus

func corpusFiles(b *testing.B) [][]taint.File {
	b.Helper()
	apps := corpus.All()
	out := make([][]taint.File, len(apps))
	for i, a := range apps {
		files, err := a.Files()
		if err != nil {
			b.Fatal(err)
		}
		out[i] = files
	}
	return out
}

func BenchmarkFigure10PathDetection(b *testing.B) {
	all := corpusFiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, files := range all {
			total += len(taint.Analyze(files, taint.DefaultOptions()).Paths)
		}
		if total != 190 {
			b.Fatalf("turnstile total = %d", total)
		}
	}
}

// Analysis-time comparison (§6.1 "Computation Time"): the same corpus
// through each analyzer.

func BenchmarkAnalysisTimeTurnstile(b *testing.B) {
	all := corpusFiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, files := range all {
			taint.Analyze(files, taint.DefaultOptions())
		}
	}
}

func BenchmarkAnalysisTimeCodeQL(b *testing.B) {
	all := corpusFiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, files := range all {
			baseline.Analyze(files)
		}
	}
}

// ---------------------------------------------------------------------------
// Parallel experiment harness: the end-to-end E1 path under the bounded
// worker pool and the per-app pipeline cache. Compare Sequential vs
// Parallel for the fan-out speedup (the acceptance target is >= 2x on a
// >= 4-core machine) and ColdCache vs WarmCache for what repeated
// experiment runs save by skipping re-parsing and re-analysis.

func benchRunE1(b *testing.B, opts harness.E1Options) {
	apps := corpus.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := harness.RunE1With(apps, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.TurnstileTotal != 190 {
			b.Fatalf("turnstile total = %d", res.TurnstileTotal)
		}
	}
}

func BenchmarkRunE1Sequential(b *testing.B) {
	benchRunE1(b, harness.E1Options{Parallel: 1})
}

func BenchmarkRunE1Parallel(b *testing.B) {
	benchRunE1(b, harness.E1Options{Parallel: runtime.GOMAXPROCS(0)})
}

func BenchmarkRunE1WarmCache(b *testing.B) {
	apps := corpus.All()
	cache := harness.NewCache()
	opts := harness.E1Options{Parallel: runtime.GOMAXPROCS(0), Cache: cache}
	if _, err := harness.RunE1With(apps, opts); err != nil {
		b.Fatal(err) // warm the cache outside the timed region
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunE1With(apps, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPrepareApp(b *testing.B, cache *harness.PipelineCache) {
	app := corpus.ByName(corpus.All(), "modbus")
	if cache != nil {
		if _, err := harness.PrepareAppCached(app, cache); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.PrepareAppCached(app, cache); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrepareAppColdCache(b *testing.B) { benchPrepareApp(b, nil) }
func BenchmarkPrepareAppWarmCache(b *testing.B) { benchPrepareApp(b, harness.NewCache()) }

func benchMeasureApps(b *testing.B, parallel int) {
	apps := corpus.All()
	subset := []*corpus.App{
		corpus.ByName(apps, "nlp.js"),
		corpus.ByName(apps, "modbus"),
		corpus.ByName(apps, "watson"),
		corpus.ByName(apps, "sensor-logger"),
	}
	opts := harness.E2Options{Messages: 30, Warmup: 5, Repeats: 1,
		ServiceScale: harness.DefaultServiceScale,
		Parallel:     parallel, Cache: harness.NewCache()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := harness.MeasureApps(subset, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) != len(subset) {
			b.Fatalf("measured %d apps", len(ms))
		}
	}
}

func BenchmarkMeasureAppsSequential(b *testing.B) { benchMeasureApps(b, 1) }
func BenchmarkMeasureAppsParallel(b *testing.B)   { benchMeasureApps(b, runtime.GOMAXPROCS(0)) }

// ---------------------------------------------------------------------------
// Figures 11 and 12 / E2: run-time overhead

// measureSubset measures a contrasting subset of the 27 apps (a dictionary-
// heavy app, a decode-heavy app, a light app) with a bench-sized workload.
func measureSubset(b *testing.B, names ...string) []harness.AppMeasurement {
	b.Helper()
	apps := corpus.All()
	opts := harness.E2Options{Messages: 30, Warmup: 5, Repeats: 1,
		ServiceScale: harness.DefaultServiceScale}
	var ms []harness.AppMeasurement
	for _, name := range names {
		app := corpus.ByName(apps, name)
		if app == nil {
			b.Fatalf("unknown app %q", name)
		}
		m, err := harness.MeasureApp(app, opts)
		if err != nil {
			b.Fatal(err)
		}
		ms = append(ms, *m)
	}
	return ms
}

func BenchmarkFigure11OverheadSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms := measureSubset(b, "nlp.js", "modbus", "sensor-logger")
		points := harness.Figure11(ms, workload.Rates)
		if len(points) != len(workload.Rates) {
			b.Fatal("missing rate points")
		}
	}
}

func BenchmarkFigure12PerApp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms := measureSubset(b, "nlp.js", "watson")
		rows := harness.Figure12(ms)
		if len(rows) != 2 {
			b.Fatal("missing rows")
		}
	}
}

// Per-message end-to-end cost of the three versions of one app — the raw
// quantity behind Figs. 11 and 12.

func runnerFor(b *testing.B, name string) *harness.PreparedApp {
	b.Helper()
	app := corpus.ByName(corpus.All(), name)
	prep, err := harness.PrepareApp(app)
	if err != nil {
		b.Fatal(err)
	}
	return prep
}

func benchMessages(b *testing.B, r *harness.Runner) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := r.Process(i % 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMessageOriginal(b *testing.B) {
	benchMessages(b, runnerFor(b, "camera-archiver").Original)
}
func BenchmarkMessageSelective(b *testing.B) {
	benchMessages(b, runnerFor(b, "camera-archiver").Selective)
}
func BenchmarkMessageExhaustive(b *testing.B) {
	benchMessages(b, runnerFor(b, "camera-archiver").Exhaustive)
}

// The nlp.js blowup in isolation (§6.2).
func BenchmarkNlpSelective(b *testing.B)  { benchMessages(b, runnerFor(b, "nlp.js").Selective) }
func BenchmarkNlpExhaustive(b *testing.B) { benchMessages(b, runnerFor(b, "nlp.js").Exhaustive) }

// ---------------------------------------------------------------------------
// Ablation 1: selective vs exhaustive instrumentation cost (static)

func BenchmarkInstrumentSelective(b *testing.B)  { benchInstrument(b, instrument.Selective) }
func BenchmarkInstrumentExhaustive(b *testing.B) { benchInstrument(b, instrument.Exhaustive) }

func benchInstrument(b *testing.B, mode instrument.Mode) {
	app := corpus.ByName(corpus.All(), "modbus")
	files, err := app.Files()
	if err != nil {
		b.Fatal(err)
	}
	prog := files[0].Prog
	res := taint.Analyze(files, taint.DefaultOptions())
	sel := instrument.Selection(res.SelectionFor(files[0].Name))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := instrument.Instrument(prog, instrument.Options{Mode: mode, Selection: sel}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation 2: cached DAG reachability (§4.4 — O(V+E) first check, O(1) after)

func benchPolicyGraph(b *testing.B, warm bool) {
	rules := make([]policy.Rule, 0, 64)
	labels := make([]policy.Label, 65)
	for i := range labels {
		labels[i] = policy.Label(string(rune('A'+i%26)) + string(rune('0'+i/26)))
	}
	for i := 0; i+1 < len(labels); i++ {
		rules = append(rules, policy.Rule{From: labels[i], To: labels[i+1]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !warm {
			b.StopTimer()
			g, err := policy.NewGraph(rules) // fresh graph: cold cache
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			g.CanFlow(labels[0], labels[len(labels)-1])
		} else {
			if i == 0 {
				b.StopTimer()
				warmGraph, _ = policy.NewGraph(rules)
				warmGraph.CanFlow(labels[0], labels[len(labels)-1])
				b.StartTimer()
			}
			warmGraph.CanFlow(labels[0], labels[len(labels)-1])
		}
	}
}

var warmGraph *policy.Graph

func BenchmarkPolicyCheckCold(b *testing.B) { benchPolicyGraph(b, false) }
func BenchmarkPolicyCheckWarm(b *testing.B) { benchPolicyGraph(b, true) }

// ---------------------------------------------------------------------------
// Ablation 3: value-type boxing cost (§4.4)

func BenchmarkBoxedVsReference(b *testing.B) {
	p, err := policy.New(nil, []policy.Rule{{From: "a", To: "b"}}, nil, policy.FlowComparable)
	if err != nil {
		b.Fatal(err)
	}
	tr := dift.NewTracker(p, interp.Adapter{})
	ls := policy.NewLabelSet("a")
	obj := interp.NewObject()
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Attach(obj, ls)
		}
	})
	b.Run("boxed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Attach(42.0, ls) // allocates a Box each time
		}
	})
}

// ---------------------------------------------------------------------------
// Ablation 4: type-sensitive interprocedural analysis (§6.1)

func BenchmarkTaintTypeSensitive(b *testing.B)   { benchTaint(b, true) }
func BenchmarkTaintTypeInsensitive(b *testing.B) { benchTaint(b, false) }

func benchTaint(b *testing.B, typeSensitive bool) {
	app := corpus.ByName(corpus.All(), "camera-archiver")
	files, err := app.Files()
	if err != nil {
		b.Fatal(err)
	}
	opts := taint.DefaultOptions()
	opts.TypeSensitive = typeSensitive
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		taint.Analyze(files, opts)
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks

func BenchmarkParseCorpusApp(b *testing.B) {
	app := corpus.ByName(corpus.All(), "modbus")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse("modbus.js", app.Source); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpFibonacci(b *testing.B) {
	prog := parser.MustParse("fib.js", `
function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
fib(15);
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := interp.New()
		if err := ip.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueueSimulation(b *testing.B) {
	s := make(workload.Service, 1000)
	for i := range s {
		s[i] = time.Duration(100+i%700) * time.Microsecond
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, hz := range workload.Rates {
			workload.CompletionTime(s, hz)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation 5: implicit-flow tracking overhead (§8 extension)

func BenchmarkExplicitFlowsOnly(b *testing.B) { benchImplicit(b, false) }
func BenchmarkImplicitFlows(b *testing.B)     { benchImplicit(b, true) }

func benchImplicit(b *testing.B, implicit bool) {
	src := `
const net = require("net");
const fs = require("fs");
const out = fs.createWriteStream("/door");
const sock = net.connect({ host: "cam", port: 554 });
sock.on("data", frame => {
  let state = "closed";
  for (let i = 0; i < frame.length; i++) {
    if (frame[i] === "E") { state = "open"; }
  }
  out.write(state + ":" + frame.length);
});
`
	opts := core.DefaultOptions()
	opts.Enforce = false
	opts.ImplicitFlows = implicit
	app, err := core.Manage(map[string]string{"door.js": src},
		`{"labellers":{"F":"v => \"secret\""},"rules":["public -> secret"],"injections":[{"object":"frame","labeller":"F"}]}`,
		opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := app.Emit("net.socket:cam:554", "data", "xxExxxxExx"); err != nil {
			b.Fatal(err)
		}
	}
}
